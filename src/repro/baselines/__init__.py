"""Comparison algorithms from the paper's related work (experiment E4).

=====================  ==========================================  =========================
baseline               source                                      guarantee
=====================  ==========================================  =========================
minsum                 Suurballe / Suurballe–Tarjan [20, 21]       cost-optimal, any delay
lp_rounding_2_2        Guo, FAW 2014 [9] (the paper's phase 1)     bifactor (2, 2)
orda_sprintson_style   Orda–Sprintson [18] / Guo et al. [12]       (1 + 1/r, 1 + r) family
greedy_sequential      folklore sequential QoS routing             none
ksp_filtering          k-shortest-paths + disjoint filtering       none
=====================  ==========================================  =========================
"""

from repro.baselines.minsum import BaselineResult, minsum_baseline
from repro.baselines.lp_rounding_only import lp_rounding_baseline
from repro.baselines.orda_sprintson import (
    min_cost_per_delay_cycle,
    orda_sprintson_baseline,
)
from repro.baselines.greedy_sequential import greedy_sequential_baseline
from repro.baselines.ksp_filtering import ksp_filtering_baseline

BASELINES = {
    "minsum": minsum_baseline,
    "lp_rounding_2_2": lp_rounding_baseline,
    "orda_sprintson_style": orda_sprintson_baseline,
    "greedy_sequential": greedy_sequential_baseline,
    "ksp_filtering": ksp_filtering_baseline,
}
"""Name registry used by the evaluation harness."""

GUARANTEES = {
    "minsum": "cost_anchor",
    "lp_rounding_2_2": "lemma5",
    "orda_sprintson_style": "budget",
    "greedy_sequential": "none",
    "ksp_filtering": "none",
}
"""What each baseline *promises*, as machine-readable tags the differential
oracle (:mod:`repro.oracle.differential`) enforces:

``cost_anchor``
    Its cost lower-bounds every solution's; if it happens to meet the
    budget it must equal the optimum. An ``InfeasibleInstanceError`` from
    it is authoritative (structural).
``lemma5``
    ``delay/D + cost/OPT <= 2`` (some alpha in [0, 2] splits the bifactor).
    Infeasibility claims are authoritative (the fractional relaxation is).
``budget``
    Returned solutions always respect the delay budget; infeasibility
    claims are heuristic (not checked against the oracle).
``none``
    No promise beyond structural validity of whatever it returns.
"""

__all__ = [
    "BaselineResult",
    "BASELINES",
    "GUARANTEES",
    "minsum_baseline",
    "lp_rounding_baseline",
    "orda_sprintson_baseline",
    "greedy_sequential_baseline",
    "ksp_filtering_baseline",
    "min_cost_per_delay_cycle",
]
