"""Comparison algorithms from the paper's related work (experiment E4).

=====================  ==========================================  =========================
baseline               source                                      guarantee
=====================  ==========================================  =========================
minsum                 Suurballe / Suurballe–Tarjan [20, 21]       cost-optimal, any delay
lp_rounding_2_2        Guo, FAW 2014 [9] (the paper's phase 1)     bifactor (2, 2)
orda_sprintson_style   Orda–Sprintson [18] / Guo et al. [12]       (1 + 1/r, 1 + r) family
greedy_sequential      folklore sequential QoS routing             none
ksp_filtering          k-shortest-paths + disjoint filtering       none
=====================  ==========================================  =========================
"""

from repro.baselines.minsum import BaselineResult, minsum_baseline
from repro.baselines.lp_rounding_only import lp_rounding_baseline
from repro.baselines.orda_sprintson import (
    min_cost_per_delay_cycle,
    orda_sprintson_baseline,
)
from repro.baselines.greedy_sequential import greedy_sequential_baseline
from repro.baselines.ksp_filtering import ksp_filtering_baseline

BASELINES = {
    "minsum": minsum_baseline,
    "lp_rounding_2_2": lp_rounding_baseline,
    "orda_sprintson_style": orda_sprintson_baseline,
    "greedy_sequential": greedy_sequential_baseline,
    "ksp_filtering": ksp_filtering_baseline,
}
"""Name registry used by the evaluation harness."""

__all__ = [
    "BaselineResult",
    "BASELINES",
    "minsum_baseline",
    "lp_rounding_baseline",
    "orda_sprintson_baseline",
    "greedy_sequential_baseline",
    "ksp_filtering_baseline",
    "min_cost_per_delay_cycle",
]
