"""Baseline: phase 1 alone — the (2, 2) LP-rounding algorithm of [9].

This is exactly what the paper improves on: solve the delay-budgeted flow
LP and round. Guarantee (Lemma 5): there is ``alpha in [0, 2]`` with
``delay <= alpha * D`` and ``cost <= (2 - alpha) * C_OPT`` — a bifactor
``(2, 2)`` overall, with no control over *which* criterion overshoots.
Running it as a standalone baseline shows how much the bicameral phase
buys (experiment E4)."""

from __future__ import annotations

from repro.baselines.minsum import BaselineResult
from repro.core.instance import KRSPInstance
from repro.core.phase1 import phase1_lp_rounding
from repro.graph.digraph import DiGraph


def lp_rounding_baseline(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
) -> BaselineResult:
    """Phase-1 LP rounding with no cancellation afterwards.

    Raises :class:`~repro.errors.InfeasibleInstanceError` when the
    fractional relaxation is already infeasible.
    """
    inst = KRSPInstance(graph=g, s=s, t=t, k=k, delay_bound=delay_bound)
    res = phase1_lp_rounding(inst)
    sol = res.solution
    return BaselineResult(
        name="lp_rounding_2_2",
        paths=[list(p) for p in sol.paths],
        cost=sol.cost,
        delay=sol.delay,
        meets_delay_bound=sol.delay <= delay_bound,
    )
