"""Baseline: k-shortest-paths enumeration with disjointness filtering.

A widely deployed practical recipe for disjoint QoS routing (and a natural
strawman the paper's algorithm should beat): enumerate the ``pool_size``
cheapest loopless paths with Yen's algorithm, then greedily assemble ``k``
pairwise edge-disjoint ones within the delay budget, restarting the greedy
scan from each pool position so a single expensive-but-necessary first pick
is not fatal.

No guarantee of any kind: the optimal solution's paths may simply not be
among the cheapest ``pool_size`` (disjointness pushes optima away from the
shortest-path neighbourhood — exactly the phenomenon Suurballe's classic
example demonstrates), and the greedy assembly is itself heuristic. Its
failure modes are the data points in experiment E4.
"""

from __future__ import annotations

from repro.baselines.minsum import BaselineResult
from repro.errors import InfeasibleInstanceError
from repro.graph.digraph import DiGraph
from repro.paths.yen import yen_k_shortest_paths


def ksp_filtering_baseline(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
    pool_size: int = 64,
) -> BaselineResult:
    """Greedy disjoint selection over the Yen pool.

    Picks, among all greedy assemblies started at each pool index, the
    cheapest delay-feasible one; raises
    :class:`~repro.errors.InfeasibleInstanceError` when no assembly meets
    the budget (which does **not** certify the instance infeasible).
    """
    pool = yen_k_shortest_paths(g, s, t, max(pool_size, k), weight=g.cost)
    if len(pool) < k:
        raise InfeasibleInstanceError(
            f"Yen pool holds only {len(pool)} paths; need k={k}"
        )
    best: list[list[int]] | None = None
    best_cost: int | None = None
    for start in range(len(pool)):
        chosen: list[list[int]] = []
        used: set[int] = set()
        for path in pool[start:]:
            if used.intersection(path):
                continue
            chosen.append(path)
            used.update(path)
            if len(chosen) == k:
                break
        if len(chosen) < k:
            continue
        flat = [e for p in chosen for e in p]
        if g.delay_of(flat) > delay_bound:
            continue
        cost = g.cost_of(flat)
        if best_cost is None or cost < best_cost:
            best, best_cost = chosen, cost
    if best is None:
        raise InfeasibleInstanceError(
            f"no delay-feasible disjoint k-subset within the {len(pool)}-path pool"
        )
    flat = [e for p in best for e in p]
    return BaselineResult(
        name="ksp_filtering",
        paths=best,
        cost=g.cost_of(flat),
        delay=g.delay_of(flat),
        meets_delay_bound=True,
    )
