"""Baseline: delay-oblivious min-sum disjoint paths (Suurballe [20, 21]).

The special case the paper cites as polynomially solvable when the delay
constraint is removed. As a kRSP baseline it is the cost anchor: no
algorithm can beat its cost, and its delay shows how badly an oblivious
router can bust the budget (experiment E4's left column).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasibleInstanceError
from repro.flow.suurballe import suurballe_k_paths
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class BaselineResult:
    """Common result record for all baselines.

    ``meets_delay_bound`` distinguishes baselines that may legitimately
    return budget-violating solutions (min-sum, greedy fallbacks) from the
    guarantee-carrying ones.
    """

    name: str
    paths: list[list[int]]
    cost: int
    delay: int
    meets_delay_bound: bool


def minsum_baseline(
    g: DiGraph,
    s: int,
    t: int,
    k: int,
    delay_bound: int,
) -> BaselineResult:
    """Cheapest k disjoint paths, ignoring the delay bound entirely."""
    paths = suurballe_k_paths(g, s, t, k)
    if paths is None:
        raise InfeasibleInstanceError(f"fewer than k={k} disjoint paths exist")
    flat = [e for p in paths for e in p]
    delay = g.delay_of(flat)
    return BaselineResult(
        name="minsum",
        paths=paths,
        cost=g.cost_of(flat),
        delay=delay,
        meets_delay_bound=delay <= delay_bound,
    )
