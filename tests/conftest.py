"""Shared fixtures, hypothesis profiles, and instance factories."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.graph import (
    DiGraph,
    anticorrelated_weights,
    from_edges,
    gnp_digraph,
    grid_digraph,
    layered_dag,
    parallel_chains,
    uniform_weights,
)

# Hypothesis profiles: the solver-heavy property suites inherit whichever
# profile HYPOTHESIS_PROFILE selects (default "dev"). Both disable the
# per-example deadline — MILP oracle calls have heavy-tailed latency and a
# wall-clock deadline would flake, not find bugs. "ci" additionally
# derandomizes so a red CI run is reproducible from the log alone, and
# spends more examples since CI minutes are cheaper than reviewer minutes.
settings.register_profile(
    "dev",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=40,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def diamond() -> tuple[DiGraph, dict]:
    """Classic 4-vertex diamond: two disjoint s-t routes.

    s -> a -> t is cheap/slow, s -> b -> t is expensive/fast.
    """
    g, ids = from_edges(
        [
            ("s", "a", 1, 10),
            ("a", "t", 1, 10),
            ("s", "b", 10, 1),
            ("b", "t", 10, 1),
        ]
    )
    return g, ids


@pytest.fixture
def two_route_graph() -> tuple[DiGraph, int, int]:
    """Graph with exactly 2 edge-disjoint s-t paths plus a shared shortcut."""
    g, ids = from_edges(
        [
            ("s", "a", 1, 4),
            ("a", "t", 1, 4),
            ("s", "b", 3, 2),
            ("b", "t", 3, 2),
            ("a", "b", 1, 1),
            ("b", "a", 1, 1),
        ]
    )
    return g, ids["s"], ids["t"]


def random_weighted_gnp(n: int, p: float, seed: int, model: str = "uniform") -> DiGraph:
    """Seeded random instance helper used across test modules."""
    g = gnp_digraph(n, p, rng=seed)
    if model == "uniform":
        return uniform_weights(g, rng=seed + 1)
    if model == "anticorrelated":
        return anticorrelated_weights(g, rng=seed + 1)
    raise ValueError(model)


@pytest.fixture
def chains3():
    """3 disjoint chains of length 3 with distinct weight profiles."""
    g, s, t = parallel_chains(3, 3)
    # chain i gets cost 1+i per edge and delay 3-i per edge.
    cost = np.zeros(g.m, dtype=np.int64)
    delay = np.zeros(g.m, dtype=np.int64)
    for e in range(g.m):
        chain = e // 3
        cost[e] = 1 + chain
        delay[e] = 3 - chain
    return g.with_weights(cost, delay), s, t


__all__ = ["random_weighted_gnp"]
