"""Tests for the LP substrate: flow LP, score-monotone rounding, MILP oracle."""

import itertools

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flow import decompose_flow
from repro.graph import (
    from_edges,
    gnp_digraph,
    parallel_chains,
    to_networkx,
    uniform_weights,
    anticorrelated_weights,
)
from repro.graph.validate import check_disjoint_paths
from repro.lp import (
    incidence_matrix,
    round_flow_score_monotone,
    solve_flow_lp,
    solve_krsp_milp,
)


def brute_force_krsp(g, s, t, k, D):
    """Reference oracle: enumerate all k-subsets of simple paths."""
    nxg = to_networkx(g)
    all_paths = []
    for node_path in nx.all_simple_paths(nxg, s, t):
        options = [
            [d["eid"] for d in nxg[u][v].values()]
            for u, v in zip(node_path, node_path[1:])
        ]
        for combo in itertools.product(*options):
            all_paths.append(list(combo))
    best = None
    for subset in itertools.combinations(all_paths, k):
        edges = [e for p in subset for e in p]
        if len(set(edges)) != len(edges):
            continue
        cost, delay = g.cost_of(edges), g.delay_of(edges)
        if delay <= D and (best is None or cost < best):
            best = cost
    return best


class TestIncidence:
    def test_flow_conservation_row_sums(self):
        g, s, t = parallel_chains(2, 3)
        A = incidence_matrix(g)
        x = np.ones(g.m)
        net = A @ x
        assert net[s] == 2 and net[t] == -2
        assert np.count_nonzero(net) == 2


class TestFlowLp:
    def test_lower_bounds_opt(self):
        for seed in range(15):
            g = anticorrelated_weights(gnp_digraph(9, 0.4, rng=seed), rng=seed + 1)
            D = 30
            lp = solve_flow_lp(g, 0, 8, 2, D)
            exact = solve_krsp_milp(g, 0, 8, 2, D)
            if exact is None:
                continue  # LP may still be feasible fractionally
            assert lp is not None
            assert lp.cost <= exact.cost + 1e-6
            assert lp.delay <= D + 1e-6

    def test_infeasible_when_disconnected(self):
        g, ids = from_edges([("s", "a", 1, 1)], nodes=["s", "a", "t"])
        assert solve_flow_lp(g, ids["s"], ids["t"], 1, 10) is None

    def test_infeasible_when_budget_impossible(self):
        g, s, t = parallel_chains(2, 2)
        g = g.with_weights(np.ones(g.m, np.int64), np.ones(g.m, np.int64) * 5)
        # 2 paths x 2 edges x delay 5 = 20 minimum.
        assert solve_flow_lp(g, s, t, 2, 19) is None
        assert solve_flow_lp(g, s, t, 2, 20) is not None

    def test_fractional_beats_integral_when_budget_fractional(self):
        # Two routes: cheap/slow and expensive/fast; a budget between the
        # two forces the LP to mix them.
        g, ids = from_edges([("s", "t", 1, 10), ("s", "t", 10, 1)])
        lp = solve_flow_lp(g, ids["s"], ids["t"], 1, 5)
        assert lp is not None
        assert 0.4 < lp.x[0] < 0.7  # mixes the two edges
        assert lp.cost < 10

    def test_dual_delay_nonnegative(self):
        g, ids = from_edges([("s", "t", 1, 10), ("s", "t", 10, 1)])
        lp = solve_flow_lp(g, ids["s"], ids["t"], 1, 5)
        assert lp.dual_delay is not None and lp.dual_delay >= 0


class TestRounding:
    def test_integral_input_passthrough(self):
        g, s, t = parallel_chains(2, 2)
        x = np.ones(g.m)
        mask = round_flow_score_monotone(g, x, 1.0, 1.0)
        assert mask.all()

    def test_rounds_fractional_mixture(self):
        g, ids = from_edges([("s", "t", 1, 10), ("s", "t", 10, 1)])
        lp = solve_flow_lp(g, ids["s"], ids["t"], 1, 5)
        mask = round_flow_score_monotone(g, lp.x, max(lp.cost, 1e-9), 5)
        eids = np.nonzero(mask)[0]
        # Result must be exactly one of the two parallel edges.
        assert len(eids) == 1
        # Score guarantee: d/D + c/C_LP <= 2.
        score = g.delay_of(eids) / 5 + g.cost_of(eids) / lp.cost
        assert score <= 2 + 1e-6

    @settings(deadline=None, max_examples=40)
    @given(st.integers(0, 100_000), st.integers(1, 3))
    def test_score_never_exceeds_two(self, seed, k):
        g = anticorrelated_weights(gnp_digraph(10, 0.35, rng=seed), rng=seed + 1)
        s, t = 0, g.n - 1
        D = 40
        lp = solve_flow_lp(g, s, t, k, D)
        if lp is None:
            return
        cost_norm = max(lp.cost, 1e-9)
        mask = round_flow_score_monotone(g, lp.x, cost_norm, D)
        eids = np.nonzero(mask)[0]
        # Valid integral k-flow...
        paths, cycles = decompose_flow(g, eids, s, t)
        assert len(paths) == k
        check_disjoint_paths(g, paths, s, t, k=k)
        # ...satisfying the Lemma 5 score bound.
        score = g.delay_of(eids) / D + g.cost_of(eids) / cost_norm
        assert score <= 2 + 1e-6


class TestMilp:
    def test_infeasible_cases(self):
        g, s, t = parallel_chains(2, 2)
        assert solve_krsp_milp(g, s, t, 3, 100) is None  # not enough paths
        g2 = g.with_weights(g.cost, np.ones(g.m, np.int64) * 10)
        assert solve_krsp_milp(g2, s, t, 2, 10) is None  # budget too tight

    def test_k_zero_trivial(self):
        g, s, t = parallel_chains(1, 1)
        sol = solve_krsp_milp(g, s, t, 0, 0)
        assert sol.paths == [] and sol.cost == 0

    def test_diamond_tradeoff(self, diamond):
        g, ids = diamond
        s, t = ids["s"], ids["t"]
        # k=2 must take both routes regardless.
        sol = solve_krsp_milp(g, s, t, 2, 100)
        assert sol.cost == 22 and sol.delay == 22
        assert solve_krsp_milp(g, s, t, 2, 21) is None

    def test_delay_budget_steers_k1(self, diamond):
        g, ids = diamond
        assert solve_krsp_milp(g, ids["s"], ids["t"], 1, 20).cost == 2
        assert solve_krsp_milp(g, ids["s"], ids["t"], 1, 19).cost == 20

    @settings(deadline=None, max_examples=25)
    @given(st.integers(0, 100_000), st.integers(1, 2), st.integers(5, 40))
    def test_matches_brute_force(self, seed, k, D):
        g = uniform_weights(gnp_digraph(7, 0.35, rng=seed), (1, 9), (1, 9), rng=seed + 1)
        s, t = 0, 6
        sol = solve_krsp_milp(g, s, t, k, D)
        expected = brute_force_krsp(g, s, t, k, D)
        if expected is None:
            assert sol is None
        else:
            assert sol is not None
            assert sol.cost == expected
            assert sol.delay <= D
            check_disjoint_paths(g, sol.paths, s, t, k=k)
