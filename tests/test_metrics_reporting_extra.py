"""Additional coverage: metrics corner cases and report formatting."""

import pytest

from repro.eval.metrics import QualityReport, measure_quality, summarize
from repro.eval.reporting import format_series, format_table
from repro.graph import from_edges


class TestMeasureQuality:
    def test_infeasible_instance_inf_beta(self):
        # No path at all: both oracles come back empty.
        g, ids = from_edges([("s", "a", 1, 1)], nodes=["s", "a", "t"])
        rep = measure_quality(g, ids["s"], ids["t"], 1, 10, cost=5, delay=5)
        assert rep.opt_cost is None and rep.lp_bound is None
        assert rep.beta == float("inf")
        assert not rep.beta_is_exact

    def test_zero_budget_alpha(self):
        g, ids = from_edges([("s", "t", 1, 0)])
        rep = measure_quality(g, ids["s"], ids["t"], 1, 0, cost=1, delay=0)
        assert rep.alpha == 0.0

    def test_milp_disabled_uses_lp(self):
        g, ids = from_edges([("s", "t", 4, 1), ("s", "t", 9, 1)])
        rep = measure_quality(g, ids["s"], ids["t"], 1, 5, cost=9, delay=1,
                              use_milp=False)
        assert rep.opt_cost is None
        assert rep.lp_bound == pytest.approx(4.0)
        assert rep.beta == pytest.approx(9 / 4)

    def test_exact_beats_lp_normalization(self):
        g, ids = from_edges([("s", "t", 4, 1), ("s", "t", 9, 1)])
        rep = measure_quality(g, ids["s"], ids["t"], 1, 5, cost=4, delay=1)
        assert rep.beta_is_exact and rep.beta == 1.0


class TestSummarize:
    def test_single_value(self):
        s = summarize([7.0])
        assert s == {"count": 1, "mean": 7.0, "max": 7.0, "min": 7.0}

    def test_negative_values(self):
        s = summarize([-1.0, 1.0])
        assert s["mean"] == 0.0 and s["min"] == -1.0


class TestFormatting:
    def test_custom_float_format(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out and "1.234" not in out

    def test_mixed_types(self):
        out = format_table(["a", "b", "c"], [["s", 2, 3.5]])
        assert "3.500" in out

    def test_series_multiple_columns(self):
        out = format_series("n", ["t1", "t2"], [(10, [0.5, 0.7])])
        lines = out.splitlines()
        assert "t1" in lines[0] and "t2" in lines[0]
        assert "0.500" in out and "0.700" in out

    def test_wide_cells_align(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell-value"]])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_quality_report_dataclass(self):
        rep = QualityReport(
            cost=1, delay=2, opt_cost=None, lp_bound=None,
            alpha=0.5, beta=1.0, beta_is_exact=False,
        )
        assert rep.alpha == 0.5
