"""Tests for bicameral classification (Definition 10) and selection."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bicameral import (
    CandidateCycle,
    CycleType,
    better_type1,
    better_type2,
    classify,
    select_candidate,
)


def cand(cost, delay, edges=(0,)):
    return CandidateCycle(edges=tuple(edges), cost=cost, delay=delay)


class TestClassify:
    @pytest.mark.parametrize(
        "cost,delay",
        [(-1, -1), (0, -1), (-1, 0), (-5, -5)],
    )
    def test_type0(self, cost, delay):
        assert classify(cost, delay, -10, 5, 100) is CycleType.TYPE0

    def test_zero_zero_not_bicameral(self):
        assert classify(0, 0, -10, 5, 100) is CycleType.NONE

    def test_type1_rate_pass(self):
        # d/c = -4/1 <= DeltaD/DeltaC = -10/5 = -2 ✓
        assert classify(1, -4, -10, 5, 100) is CycleType.TYPE1

    def test_type1_rate_fail(self):
        # d/c = -1/1 > -2.
        assert classify(1, -1, -10, 5, 100) is CycleType.NONE

    def test_type1_cap(self):
        assert classify(101, -500, -10, 5, 100) is CycleType.NONE
        assert classify(100, -500, -10, 5, 100) is CycleType.TYPE1

    def test_type2_rate_pass(self):
        # d/c = 1/-1 = -1 >= -2 ✓
        assert classify(-1, 1, -10, 5, 100) is CycleType.TYPE2

    def test_type2_rate_fail(self):
        # d/c = -5 < -2.
        assert classify(-1, 5, -10, 5, 100) is CycleType.NONE

    def test_type2_cap(self):
        assert classify(-101, 1, -10, 5, 100) is CycleType.NONE

    def test_no_estimate_disables_rates(self):
        assert classify(1, -100, -10, None, None) is CycleType.NONE
        assert classify(-1, -1, -10, None, None) is CycleType.TYPE0

    def test_nonpositive_delta_c_disables(self):
        assert classify(1, -100, -10, 0, None) is CycleType.NONE
        assert classify(1, -100, -10, -3, None) is CycleType.NONE

    def test_positive_both_never_bicameral(self):
        assert classify(5, 5, -10, 5, 100) is CycleType.NONE


class TestComparators:
    def test_type1_prefers_more_negative_ratio(self):
        a = cand(1, -4)  # ratio -4
        b = cand(2, -4)  # ratio -2
        assert better_type1(a, b) is a

    def test_type1_tie_breaks_on_cost(self):
        a = cand(1, -2, edges=(5,))
        b = cand(2, -4, edges=(6,))  # same ratio -2
        assert better_type1(a, b) is a

    def test_type1_deterministic_on_full_tie(self):
        a = cand(1, -2, edges=(1, 2))
        b = cand(1, -2, edges=(3,))
        assert better_type1(a, b) is a
        assert better_type1(b, a) is a

    def test_type2_prefers_ratio_closer_to_zero(self):
        a = cand(-4, 1)  # ratio -0.25
        b = cand(-1, 1)  # ratio -1
        assert better_type2(a, b) is a


class TestSelect:
    def test_type0_always_wins(self):
        cs = [cand(1, -100, edges=(1,)), cand(0, -1, edges=(2,))]
        picked = select_candidate(cs, -10, 100, 1000)
        assert picked[1] is CycleType.TYPE0
        assert picked[0].edges == (2,)

    def test_certified_type1_beats_fallback(self):
        cs = [cand(1, -4, edges=(1,))]
        picked = select_candidate(cs, -10, 5, 100)
        assert picked == (cs[0], CycleType.TYPE1)

    def test_empty_returns_none(self):
        assert select_candidate([], -10, 5, 100) is None

    def test_useless_candidates_return_none(self):
        # positive delay & positive cost moves nothing anywhere useful.
        assert select_candidate([cand(3, 3)], -10, 5, 100) is None

    def test_fallback_type1_first(self):
        # Rate test fails (no estimate) but a type-1-shaped cycle exists.
        cs = [cand(10, -1, edges=(1,)), cand(-1, 5, edges=(2,))]
        picked = select_candidate(cs, -10, None, None)
        assert picked[1] is CycleType.TYPE1

    def test_fallback_type2_when_no_type1(self):
        cs = [cand(-1, 5, edges=(2,))]
        picked = select_candidate(cs, -10, None, None)
        assert picked[1] is CycleType.TYPE2

    def test_paper_step3_rule(self):
        # |d1/c1| = 4 vs |d2/c2| = 1 -> paper rule picks type-2.
        cs = [cand(1, -4, edges=(1,)), cand(-4, 4, edges=(2,))]
        picked = select_candidate(cs, -10, None, None, fallback="paper_step3")
        assert picked[1] is CycleType.TYPE2
        # Default rule sticks with type-1.
        picked2 = select_candidate(cs, -10, None, None)
        assert picked2[1] is CycleType.TYPE1

    def test_cap_filters_shapes(self):
        cs = [cand(1000, -10, edges=(1,)), cand(1, -1, edges=(2,))]
        picked = select_candidate(cs, -10, None, 100)
        assert picked[0].edges == (2,)


@given(
    st.integers(-20, 20),
    st.integers(-20, 20),
    st.integers(-50, -1),
    st.integers(1, 50),
)
def test_classify_total(cost, delay, delta_d, delta_c):
    """classify never crashes and returns a CycleType for any signs."""
    out = classify(cost, delay, delta_d, delta_c, 100)
    assert out in CycleType
    # Type-0 iff componentwise <= 0 with one strict.
    expect0 = (delay < 0 and cost <= 0) or (delay <= 0 and cost < 0)
    assert (out is CycleType.TYPE0) == expect0
