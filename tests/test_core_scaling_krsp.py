"""Tests for Theorem 4 scaling and the end-to-end solve_krsp facade."""

import numpy as np
import pytest
from fractions import Fraction

from repro.core import (
    KRSPInstance,
    mapped_back_delay_bound,
    scale_instance,
    solve_krsp,
)
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graph import (
    from_edges,
    gnp_digraph,
    anticorrelated_weights,
    parallel_chains,
)
from repro.graph.validate import check_disjoint_paths
from repro.lp.milp import solve_krsp_milp


def make(seed, n=11, total=40, D=80):
    g = anticorrelated_weights(gnp_digraph(n, 0.4, rng=seed), total=total, rng=seed + 1)
    return g, 0, n - 1, D


class TestScaling:
    def _inst(self):
        g, s, t, D = make(7, total=60, D=200)
        return KRSPInstance(g, s, t, 2, D)

    def test_topology_preserved(self):
        inst = self._inst()
        scaled = scale_instance(inst, 0.5, 0.5, 100)
        assert scaled.instance.graph.m == inst.graph.m
        assert np.array_equal(scaled.instance.graph.tail, inst.graph.tail)

    def test_floors_shrink(self):
        inst = self._inst()
        scaled = scale_instance(inst, 0.5, 0.5, 100)
        if scaled.theta_d > 1:
            assert (scaled.instance.graph.delay <= inst.graph.delay).all()
        if scaled.theta_c > 1:
            assert (scaled.instance.graph.cost <= inst.graph.cost).all()

    def test_feasible_solutions_stay_feasible(self):
        """Exact floor arithmetic: d'(P) <= D' for any d(P) <= D."""
        inst = self._inst()
        scaled = scale_instance(inst, 0.5, 0.5, 100)
        exact = solve_krsp_milp(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
        )
        if exact is None:
            pytest.skip("infeasible seed")
        flat = [e for p in exact.paths for e in p]
        assert scaled.instance.graph.delay_of(flat) <= scaled.instance.delay_bound

    def test_mapped_back_bound(self):
        inst = self._inst()
        scaled = scale_instance(inst, 0.5, 0.5, 100)
        limit = mapped_back_delay_bound(scaled)
        assert limit <= Fraction(3, 2) * inst.delay_bound

    def test_degenerate_thetas_identity(self):
        g, ids = from_edges([("s", "t", 1, 1), ("s", "t", 1, 1)])
        inst = KRSPInstance(g, ids["s"], ids["t"], 2, 5)
        scaled = scale_instance(inst, 0.1, 0.1, 2)  # thetas < 1
        assert scaled.theta_d == 1 and scaled.theta_c == 1
        assert scaled.instance.delay_bound == 5

    def test_bad_eps_rejected(self):
        inst = self._inst()
        with pytest.raises(GraphError):
            scale_instance(inst, 0.0, 0.5, 10)


class TestSolveKrsp:
    def test_end_to_end_bifactor(self):
        checked = 0
        for seed in range(20):
            g, s, t, D = make(seed, D=45)
            exact = solve_krsp_milp(g, s, t, 2, D)
            if exact is None or exact.cost == 0:
                continue
            for provider in ("lp_rounding", "lagrangian", "minsum"):
                sol = solve_krsp(g, s, t, 2, D, phase1=provider)
                assert sol.delay <= D, (seed, provider)
                assert sol.cost <= 2 * exact.cost, (seed, provider)
                assert sol.delay_feasible
                check_disjoint_paths(g, sol.paths, s, t, k=2)
            checked += 1
        assert checked >= 6

    def test_scaled_end_to_end(self):
        checked = 0
        for seed in range(10):
            g, s, t, D = make(seed + 50, total=60, D=150)
            exact = solve_krsp_milp(g, s, t, 2, D)
            if exact is None or exact.cost == 0:
                continue
            sol = solve_krsp(g, s, t, 2, D, phase1="minsum", eps=0.5)
            assert sol.delay <= 1.5 * D
            assert sol.cost <= 2.5 * exact.cost
            check_disjoint_paths(g, sol.paths, s, t, k=2)
            checked += 1
        assert checked >= 3

    def test_structural_infeasibility(self):
        g, s, t = parallel_chains(2, 3)
        with pytest.raises(InfeasibleInstanceError, match="fewer than"):
            solve_krsp(g, s, t, 3, 100)

    def test_budget_infeasibility(self):
        g, s, t = parallel_chains(2, 2)
        g = g.with_weights(np.ones(g.m, np.int64), np.full(g.m, 9, np.int64))
        with pytest.raises(InfeasibleInstanceError, match="delay"):
            solve_krsp(g, s, t, 2, 35)  # needs 36

    def test_lower_bound_certified(self):
        for seed in range(10):
            g, s, t, D = make(seed, D=45)
            exact = solve_krsp_milp(g, s, t, 2, D)
            if exact is None:
                continue
            sol = solve_krsp(g, s, t, 2, D)
            assert sol.cost_lower_bound is not None
            assert sol.cost_lower_bound <= exact.cost

    def test_timings_populated(self):
        g, s, t, D = make(1, D=45)
        exact = solve_krsp_milp(g, s, t, 2, D)
        if exact is None:
            pytest.skip("infeasible seed")
        sol = solve_krsp(g, s, t, 2, D)
        assert {"feasibility", "phase1", "cancel"} <= set(sol.timings)

    def test_k1_matches_rsp_dp(self):
        from repro.paths.rsp_exact import rsp_exact

        for seed in range(12):
            g, s, t, D = make(seed + 200, D=30)
            dp = rsp_exact(g, s, t, D)
            try:
                sol = solve_krsp(g, s, t, 1, D)
            except InfeasibleInstanceError:
                assert dp is None
                continue
            assert dp is not None
            assert sol.delay <= D
            assert sol.cost <= 2 * dp[0] if dp[0] else sol.cost == 0
