"""Numerical and structural edge cases across the whole stack.

Degenerate weights (all-zero cost, all-zero delay), boundary budgets
(D = 0, D = exact minimum), extreme magnitudes near int64, k at the exact
max-flow, and multigraph quirks — the corners where off-by-ones and
overflow live.
"""

import numpy as np
import pytest

from repro.core import solve_krsp
from repro.errors import InfeasibleInstanceError, GraphError
from repro.flow import max_flow_value, min_cost_k_flow
from repro.graph import from_edges, gnp_digraph, parallel_chains, uniform_weights
from repro.graph.validate import check_disjoint_paths
from repro.lp.milp import solve_krsp_milp
from repro.paths import rsp_exact


class TestZeroWeights:
    def test_all_zero_cost(self):
        """Cost-free instances: any feasible routing is optimal (cost 0)."""
        g, s, t = parallel_chains(2, 2)
        g = g.with_weights(np.zeros(g.m, np.int64), np.arange(1, g.m + 1, dtype=np.int64))
        total = int(g.delay.sum())
        sol = solve_krsp(g, s, t, 2, total)
        assert sol.cost == 0 and sol.delay <= total

    def test_all_zero_delay(self):
        """Delay-free instances collapse to min-sum; D = 0 is feasible."""
        g, s, t = parallel_chains(2, 2)
        g = g.with_weights(np.arange(1, g.m + 1, dtype=np.int64), np.zeros(g.m, np.int64))
        sol = solve_krsp(g, s, t, 2, 0)
        assert sol.delay == 0
        exact = solve_krsp_milp(g, s, t, 2, 0)
        assert sol.cost == exact.cost

    def test_all_zero_everything(self):
        g, s, t = parallel_chains(3, 2)
        sol = solve_krsp(g, s, t, 3, 0)
        assert sol.cost == 0 and sol.delay == 0


class TestBoundaryBudgets:
    def test_budget_exactly_at_minimum(self):
        g, ids = from_edges(
            [("s", "a", 1, 3), ("a", "t", 1, 4), ("s", "t", 9, 2)]
        )
        # min total delay for k=2 is 3+4+2 = 9.
        sol = solve_krsp(g, ids["s"], ids["t"], 2, 9)
        assert sol.delay == 9
        with pytest.raises(InfeasibleInstanceError):
            solve_krsp(g, ids["s"], ids["t"], 2, 8)

    def test_budget_zero_infeasible_with_positive_delays(self):
        g, s, t = parallel_chains(1, 2)
        g = g.with_weights(np.ones(g.m, np.int64), np.ones(g.m, np.int64))
        with pytest.raises(InfeasibleInstanceError):
            solve_krsp(g, s, t, 1, 0)

    def test_huge_budget_reduces_to_minsum(self):
        for seed in range(5):
            g = uniform_weights(gnp_digraph(9, 0.45, rng=seed), rng=seed + 1)
            huge = int(g.delay.sum()) + 1
            try:
                sol = solve_krsp(g, 0, 8, 2, huge)
            except InfeasibleInstanceError:
                continue
            from repro.flow import suurballe_k_paths

            paths = suurballe_k_paths(g, 0, 8, 2)
            assert sol.cost == sum(g.cost_of(p) for p in paths)
            assert sol.iterations == 0


class TestExtremeMagnitudes:
    def test_large_weights_no_overflow(self):
        big = 10**12
        g, ids = from_edges(
            [
                ("s", "a", big, big),
                ("a", "t", big, big),
                ("s", "t", 2 * big + 1, 1),
            ]
        )
        # k=1, budget forces the expensive fast edge.
        sol = solve_krsp(g, ids["s"], ids["t"], 1, big)
        assert sol.cost == 2 * big + 1 and sol.delay == 1

    def test_rsp_dp_guard_against_huge_budget(self):
        """The DP allocates (D+1) x n — callers must scale first; verify a
        moderate-but-large budget still works exactly."""
        g, ids = from_edges([("s", "t", 3, 1000), ("s", "t", 7, 10)])
        assert rsp_exact(g, ids["s"], ids["t"], 1000)[0] == 3
        assert rsp_exact(g, ids["s"], ids["t"], 999)[0] == 7


class TestKBoundaries:
    def test_k_equals_max_flow(self):
        g = gnp_digraph(9, 0.4, rng=12)
        g = uniform_weights(g, rng=13)
        mf = max_flow_value(g, 0, 8)
        if mf == 0:
            pytest.skip("disconnected seed")
        huge = int(g.delay.sum()) + 1
        sol = solve_krsp(g, 0, 8, mf, huge)
        check_disjoint_paths(g, sol.paths, 0, 8, k=mf)
        with pytest.raises(InfeasibleInstanceError):
            solve_krsp(g, 0, 8, mf + 1, huge)

    def test_k_one_matches_rsp(self):
        for seed in range(6):
            g = uniform_weights(gnp_digraph(8, 0.4, rng=seed), rng=seed + 1)
            dp = rsp_exact(g, 0, 7, 25)
            if dp is None:
                continue
            sol = solve_krsp(g, 0, 7, 1, 25, opt_cost=dp[0])
            assert sol.cost <= 2 * dp[0] and sol.delay <= 25


class TestMultigraphQuirks:
    def test_parallel_edges_in_solution(self):
        g, ids = from_edges(
            [("s", "t", 1, 5), ("s", "t", 1, 5), ("s", "t", 9, 1)]
        )
        sol = solve_krsp(g, ids["s"], ids["t"], 2, 10)
        assert sol.cost == 2  # both cheap parallels
        assert sorted(e for p in sol.paths for e in p) == [0, 1]

    def test_parallel_edges_forced_split(self):
        g, ids = from_edges(
            [("s", "t", 1, 8), ("s", "t", 1, 8), ("s", "t", 9, 1)]
        )
        # Budget 10 cannot host both slow parallels (16): must mix.
        sol = solve_krsp(g, ids["s"], ids["t"], 2, 10)
        assert sol.delay <= 10 and sol.cost == 10

    def test_self_loop_never_used(self):
        g, ids = from_edges(
            [("s", "t", 5, 5), ("s", "s", 0, 0), ("t", "t", 0, 0)]
        )
        sol = solve_krsp(g, ids["s"], ids["t"], 1, 10)
        assert sol.paths == [[0]]


class TestValidationHardening:
    def test_terminal_out_of_range(self):
        g, s, t = parallel_chains(1, 1)
        with pytest.raises(GraphError):
            solve_krsp(g, 0, 99, 1, 10)

    def test_negative_k(self):
        g, s, t = parallel_chains(1, 1)
        with pytest.raises(GraphError):
            solve_krsp(g, s, t, -1, 10)

    def test_mincost_flow_rejects_bad_k(self):
        g, s, t = parallel_chains(2, 2)
        with pytest.raises(GraphError):
            min_cost_k_flow(g, s, t, -1)
