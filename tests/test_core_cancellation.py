"""Tests for the Algorithm 1 cancellation loop and the Lemma 12 monitor."""

import pytest

from repro.core import KRSPInstance, cancel_to_feasibility
from repro.core.bicameral import CycleType
from repro.core.phase1 import phase1_minsum
from repro.errors import InfeasibleInstanceError, IterationLimitError
from repro.graph import from_edges, gnp_digraph, anticorrelated_weights
from repro.graph.validate import check_disjoint_paths
from repro.lp.milp import solve_krsp_milp


def solve_via_cancellation(g, s, t, k, D, **kw):
    inst = KRSPInstance(g, s, t, k, D)
    start = phase1_minsum(inst).solution
    return inst, cancel_to_feasibility(inst, start, **kw)


class TestBasics:
    def test_already_feasible_is_noop(self):
        g, ids = from_edges([("s", "t", 1, 1), ("s", "t", 2, 2)])
        inst, result = solve_via_cancellation(g, ids["s"], ids["t"], 2, 10)
        assert result.iterations == 0
        assert result.solution.cost == 3

    def test_single_swap(self):
        g, ids = from_edges(
            [
                ("s", "a", 1, 9),
                ("a", "t", 1, 9),
                ("s", "b", 5, 1),
                ("b", "t", 5, 1),
            ]
        )
        inst, result = solve_via_cancellation(g, ids["s"], ids["t"], 1, 5)
        assert result.iterations == 1
        assert result.solution.cost == 10 and result.solution.delay == 2
        assert result.records[0].cycle_type in (CycleType.TYPE0, CycleType.TYPE1)

    def test_paths_stay_valid_every_step(self):
        for seed in range(10):
            g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=seed), rng=seed + 1)
            exact = solve_krsp_milp(g, 0, 9, 2, 40)
            if exact is None:
                continue
            inst, result = solve_via_cancellation(g, 0, 9, 2, 40)
            check_disjoint_paths(
                g, [list(p) for p in result.solution.paths], 0, 9, k=2
            )
            assert result.solution.delay <= 40

    def test_iteration_cap(self):
        g, ids = from_edges(
            [
                ("s", "a", 1, 9),
                ("a", "t", 1, 9),
                ("s", "b", 5, 1),
                ("b", "t", 5, 1),
            ]
        )
        with pytest.raises(IterationLimitError):
            solve_via_cancellation(g, ids["s"], ids["t"], 1, 5, max_iterations=0)


class TestAgainstExactOptimum:
    """With opt_cost supplied, the literal Definition 10 applies and the
    (1, 2) bound of Lemma 11 must hold on every feasible instance."""

    def test_bifactor_1_2(self):
        checked = 0
        for seed in range(25):
            g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=seed), rng=seed + 1)
            exact = solve_krsp_milp(g, 0, 9, 2, 40)
            if exact is None or exact.cost == 0:
                continue
            inst, result = solve_via_cancellation(
                g, 0, 9, 2, 40, opt_cost=exact.cost
            )
            assert result.solution.delay <= 40
            assert result.solution.cost <= 2 * exact.cost
            checked += 1
        assert checked >= 8

    def test_lemma12_monitor_never_trips(self):
        """strict_monitor with the true optimum: Lemma 12's invariant holds
        on every recorded trace."""
        checked = 0
        for seed in range(25):
            g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=seed), rng=seed + 1)
            exact = solve_krsp_milp(g, 0, 9, 2, 40)
            if exact is None:
                continue
            inst, result = solve_via_cancellation(
                g, 0, 9, 2, 40, opt_cost=exact.cost, strict_monitor=True
            )
            checked += 1
        assert checked >= 8


class TestInfeasibleBackstop:
    def test_loop_detects_dead_end(self):
        # Instance with no delay-feasible solution: only one route pair and
        # it is too slow. phase1 succeeds (structure ok), loop must raise.
        g, ids = from_edges(
            [
                ("s", "a", 1, 9),
                ("a", "t", 1, 9),
                ("s", "b", 5, 7),
                ("b", "t", 5, 7),
            ]
        )
        with pytest.raises((InfeasibleInstanceError, IterationLimitError)):
            solve_via_cancellation(g, ids["s"], ids["t"], 2, 20)


class TestRecords:
    def test_records_track_totals(self):
        g, ids = from_edges(
            [
                ("s", "a", 1, 9),
                ("a", "t", 1, 9),
                ("s", "b", 5, 1),
                ("b", "t", 5, 1),
            ]
        )
        inst, result = solve_via_cancellation(g, ids["s"], ids["t"], 1, 5)
        rec = result.records[0]
        assert rec.iteration == 1
        assert rec.cost_after == result.solution.cost
        assert rec.delay_after == result.solution.delay
        # Applied cycle's deltas reconcile with totals.
        assert rec.cycle_delay == result.solution.delay - 18
        assert rec.cycle_cost == result.solution.cost - 2
