"""Differential suite for the incremental search engine (:mod:`repro.perf`).

The engine's contract is *bit-identity*: with the production finder, a
cancellation run driven by :class:`~repro.perf.IncrementalSearch` (in-place
residual deltas, cached auxiliary graphs) must produce the same cancelled
cycles, the same costs, and the same ``cancel.iteration`` telemetry trail as
the from-scratch path. These tests enforce that on the committed corpus and
on hypothesis-generated substrates, plus unit-level differentials for every
layer the engine touches (CSR patching, residual flips, the aux cache, the
dirty-anchor tracker) and regression tests for the satellite fixes
(long-cycle decomposition, transform copy-on-write).
"""

import json
import os
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core import KRSPInstance, build_residual, cancel_to_feasibility
from repro.core.auxgraph import build_aux_shifted
from repro.core.cycle_decompose import decompose_into_cycles, split_closed_walk
from repro.core.phase1 import phase1_minsum
from repro.errors import GraphError
from repro.flow import decompose_flow
from repro.graph import anticorrelated_weights, gnp_digraph
from repro.graph.digraph import DiGraph
from repro.oracle import load_corpus
from repro.paths import find_negative_cycle
from repro.perf import AnchorTracker, AuxCache, IncrementalSearch

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = list(load_corpus(CORPUS_DIR))


@pytest.fixture(autouse=True)
def _pin_deterministic_lp_backend(monkeypatch):
    """Bit-identity comparisons need the deterministic scipy LP backend.

    Warm-started highspy solves are history-dependent — a reused basis may
    land on a *different* optimal vertex than a cold solve, which is
    correct (every consumer verifies certificates) but breaks byte-equal
    incremental-vs-scratch differentials. The engine's answers themselves
    are covered by ``tests/test_lp_engine.py``'s backend-parity suite.
    """
    from repro.lp import engine as lp_engine

    monkeypatch.setenv(lp_engine.BACKEND_ENV, "scipy")
    lp_engine.reset_engine()
    yield
    lp_engine.reset_engine()


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _run_traced(inst, start, **kw):
    """Run cancellation under a trace session; return (result-or-exc, trail).

    The trail is the ordered list of ``cancel.iteration`` events with the
    timing fields stripped — the bit-identity contract covers everything
    else (cycle cost/delay, totals, types).
    """
    fd, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    outcome = None
    error = None
    try:
        with obs.session(trace_path=path):
            try:
                outcome = cancel_to_feasibility(inst, start, **kw)
            except Exception as exc:  # noqa: BLE001 — compared, not hidden
                error = exc
        events = [json.loads(line) for line in open(path)]
    finally:
        os.unlink(path)
    trail = [
        tuple(
            sorted(
                (k, v)
                for k, v in ev.items()
                if k not in ("ts", "seq", "t_rel")
            )
        )
        for ev in events
        if ev.get("kind") == "cancel.iteration"
    ]
    return outcome, error, trail


def _assert_differential(g, s, t, k, delay_bound, finder, **kw):
    """Incremental and from-scratch runs must agree on one instance."""
    inst = KRSPInstance(g, s, t, k, delay_bound)
    try:
        start = phase1_minsum(inst).solution
    except Exception:  # noqa: BLE001 — phase 1 predates the engine choice
        pytest.skip("instance infeasible before cancellation starts")
    base, base_err, base_trail = _run_traced(
        inst, start, finder=finder, incremental=False, **kw
    )
    incr, incr_err, incr_trail = _run_traced(
        inst, start, finder=finder, incremental=True, **kw
    )
    if base_err is not None or incr_err is not None:
        assert type(base_err) is type(incr_err), (base_err, incr_err)
        return
    assert (base.solution.cost, base.solution.delay) == (
        incr.solution.cost,
        incr.solution.delay,
    )
    if finder == "production":
        # Full bit-identity: same cycles, same telemetry trail.
        assert base_trail == incr_trail
        assert base.records == incr.records


def _random_residual_full(rng, n=12, p=0.35):
    """(base graph, reversed set, residual) on a random substrate."""
    g = anticorrelated_weights(gnp_digraph(n, p, rng=rng), rng=rng)
    m = g.m
    if m == 0:
        return None
    n_rev = int(rng.integers(0, max(1, m // 3) + 1))
    rev = sorted(int(e) for e in rng.choice(m, size=n_rev, replace=False))
    return g, rev, build_residual(g, rev)


def _random_residual(rng, n=12, p=0.35):
    full = _random_residual_full(rng, n, p)
    return None if full is None else full[2]


# ---------------------------------------------------------------------------
# end-to-end differential: incremental vs from-scratch cancellation
# ---------------------------------------------------------------------------


class TestCancellationDifferential:
    @pytest.mark.parametrize(
        "entry", ENTRIES, ids=[e.name for e in ENTRIES]
    )
    def test_corpus_production(self, entry):
        i = entry.instance
        _assert_differential(
            i.graph, i.s, i.t, i.k, i.delay_bound, finder="production"
        )

    @pytest.mark.parametrize(
        "entry",
        [e for e in ENTRIES if e.instance.graph.m <= 12],
        ids=[e.name for e in ENTRIES if e.instance.graph.m <= 12],
    )
    def test_corpus_paper_literal(self, entry):
        """The tracked paper finder is a heuristic (replayed verdicts), but
        the final solution quality must match the from-scratch finder."""
        i = entry.instance
        _assert_differential(
            i.graph, i.s, i.t, i.k, i.delay_bound, finder="paper_literal"
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_substrates_production(self, seed):
        g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=seed), rng=seed + 1)
        _assert_differential(g, 0, 9, 2, 40, finder="production")


# ---------------------------------------------------------------------------
# layer differential: CSR patching and residual flips
# ---------------------------------------------------------------------------


class TestFlipEdges:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_csr_patch_matches_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 12))
        m = int(rng.integers(1, 30))
        g = DiGraph(
            n,
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
            rng.integers(-5, 9, size=m),
            rng.integers(-5, 9, size=m),
        )
        # Force-build both CSR caches, then flip with patching in place.
        g.out_edges(0)
        g.in_edges(0)
        flips = rng.choice(m, size=int(rng.integers(1, m + 1)), replace=False)
        g.flip_edges(flips)
        fresh = DiGraph(n, g.tail.copy(), g.head.copy(), g.cost.copy(), g.delay.copy())
        for v in range(n):
            assert np.array_equal(g.out_edges(v), fresh.out_edges(v)), v
            assert np.array_equal(g.in_edges(v), fresh.in_edges(v)), v

    def test_out_of_range_raises(self):
        g = DiGraph(2, [0], [1], [3], [4])
        with pytest.raises(GraphError):
            g.flip_edges([1])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_apply_flip_matches_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        full = _random_residual_full(rng)
        if full is None:
            return
        base, _rev, res = full
        m = res.graph.m
        flips = sorted(
            int(e)
            for e in rng.choice(m, size=int(rng.integers(1, m + 1)), replace=False)
        )
        res.apply_flip(flips)
        new_rev = sorted(int(e) for e in np.nonzero(res.reversed_mask)[0])
        fresh = build_residual(base, new_rev)
        for arr in ("tail", "head", "cost", "delay"):
            assert np.array_equal(
                getattr(res.graph, arr), getattr(fresh.graph, arr)
            ), arr
        assert res.version == 1


# ---------------------------------------------------------------------------
# aux cache: bit-identity, delta refresh, growth, eviction
# ---------------------------------------------------------------------------


def _assert_aux_equal(a, b):
    assert a.n_layers == b.n_layers and a.offset == b.offset
    assert a.graph.n == b.graph.n and a.graph.m == b.graph.m
    for arr in ("tail", "head", "cost", "delay"):
        assert np.array_equal(getattr(a.graph, arr), getattr(b.graph, arr)), arr
    assert np.array_equal(a.orig_eid, b.orig_eid)
    assert np.array_equal(a.wrap_cost, b.wrap_cost)


class TestAuxCache:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_served_graphs_match_fresh_builds(self, seed):
        rng = np.random.default_rng(seed)
        res = _random_residual(rng)
        if res is None:
            return
        cache = AuxCache(res)
        m = res.graph.m
        for _ in range(4):
            for B in (1, 2, 4):
                _assert_aux_equal(cache.get(B), build_aux_shifted(res.graph, B))
            flips = res.apply_flip(
                sorted(
                    int(e)
                    for e in rng.choice(
                        m, size=int(rng.integers(1, m + 1)), replace=False
                    )
                )
            )
            cache.note_flips(flips)

    def test_growth_from_smaller_level(self):
        rng = np.random.default_rng(7)
        res = _random_residual(rng)
        cache = AuxCache(res)
        with obs.session():
            cache.get(2)
            cache.get(8)  # grown from the B=2 skeleton
            snap = obs.snapshot()
        assert snap.get("search.aux_cache.grow", 0) >= 1
        _assert_aux_equal(cache.get(8), build_aux_shifted(res.graph, 8))

    def test_eviction_under_byte_cap(self):
        rng = np.random.default_rng(11)
        res = _random_residual(rng, n=14, p=0.5)
        with obs.session():
            cache = AuxCache(res, max_bytes=1)  # everything over cap
            cache.get(1)
            cache.get(2)
            cache.get(4)
            snap = obs.snapshot()
        assert snap.get("search.aux_cache.evict", 0) >= 1
        assert snap["search.aux_cache.evict"] <= snap["search.aux_cache.miss"]
        # Still serves correct graphs after evictions.
        _assert_aux_equal(cache.get(4), build_aux_shifted(res.graph, 4))

    def test_hit_and_delta_refresh_counters(self):
        rng = np.random.default_rng(3)
        res = _random_residual(rng)
        with obs.session():
            cache = AuxCache(res)
            cache.get(2)
            cache.get(2)  # exact hit
            flips = res.apply_flip([0])
            cache.note_flips(flips)
            cache.get(2)  # stale hit -> delta refresh
            snap = obs.snapshot()
        assert snap["search.aux_cache.hit"] == 2
        assert snap["search.aux_cache.delta_refresh"] == 1
        assert snap["search.aux_cache.miss"] == 1
        _assert_aux_equal(cache.get(2), build_aux_shifted(res.graph, 2))


class TestIncrementalSearchEngine:
    def test_residual_for_tracks_solution_changes(self):
        rng = np.random.default_rng(5)
        g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=5), rng=6)
        engine = IncrementalSearch(g)
        sol_a = [0, 1, 2]
        res = engine.residual_for(sol_a)
        scratch = build_residual(g, sol_a)
        assert np.array_equal(res.graph.cost, scratch.graph.cost)
        sol_b = [1, 2, 3]
        res = engine.residual_for(sol_b)
        scratch = build_residual(g, sol_b)
        for arr in ("tail", "head", "cost", "delay"):
            assert np.array_equal(
                getattr(res.graph, arr), getattr(scratch.graph, arr)
            ), arr
        assert res.version == 1

    def test_aux_provider_rejects_foreign_residual(self):
        g = anticorrelated_weights(gnp_digraph(8, 0.4, rng=1), rng=2)
        engine = IncrementalSearch(g)
        engine.residual_for([0])
        foreign = build_residual(g, [0])
        with pytest.raises(GraphError):
            engine.aux_provider(foreign.graph, 2)


# ---------------------------------------------------------------------------
# dirty-anchor tracker
# ---------------------------------------------------------------------------


class TestAnchorTracker:
    def test_unknown_anchor_is_dirty(self):
        res = build_residual(gnp_digraph(6, 0.5, rng=0), [0])
        tracker = AnchorTracker(res.graph.m)
        assert tracker.is_dirty(res, 0)

    def test_clean_after_store_dirty_after_incident_flip(self):
        g = anticorrelated_weights(gnp_digraph(8, 0.5, rng=4), rng=4)
        res = build_residual(g, [0, 1])
        tracker = AnchorTracker(g.m)
        anchor = int(res.graph.head[0])
        tracker.store(anchor, res.version, {})
        assert not tracker.is_dirty(res, anchor)
        incident = np.concatenate(
            [res.graph.out_edges(anchor), res.graph.in_edges(anchor)]
        )
        flipped = res.apply_flip([int(incident[0])])
        tracker.note_flips(flipped, res.version)
        assert tracker.is_dirty(res, anchor)

    def test_replay_drops_candidates_with_flipped_edges(self):
        from repro.core.bicameral import CandidateCycle

        tracker = AnchorTracker(10)
        cand_ok = CandidateCycle(edges=(1, 2), cost=0, delay=-1)
        cand_stale = CandidateCycle(edges=(3, 4), cost=1, delay=-2)
        tracker.store(0, 0, {(1, 1): [cand_ok, cand_stale]})
        tracker.note_flips([3], 1)
        assert tracker.replay(0, 1, 1) == [cand_ok]


# ---------------------------------------------------------------------------
# satellite regressions: long-cycle gadgets through the decomposers
# ---------------------------------------------------------------------------


def _ring(n):
    """One simple cycle 0 -> 1 -> ... -> n-1 -> 0."""
    tails = np.arange(n, dtype=np.int64)
    heads = (tails + 1) % n
    w = np.ones(n, dtype=np.int64)
    return DiGraph(n, tails, heads, w, w)


class TestLongCycleGadgets:
    N = 4000

    def test_decompose_into_cycles_single_long_cycle(self):
        g = _ring(self.N)
        cycles = decompose_into_cycles(g, list(range(self.N)))
        assert len(cycles) == 1 and len(cycles[0]) == self.N

    def test_decompose_into_cycles_many_disjoint_cycles(self):
        # 2-cycles between (2i, 2i+1): the old per-cycle min-scan was
        # quadratic in the number of cycles on exactly this shape.
        pairs = self.N // 2
        tails = np.empty(self.N, dtype=np.int64)
        heads = np.empty(self.N, dtype=np.int64)
        tails[0::2] = np.arange(pairs) * 2
        heads[0::2] = np.arange(pairs) * 2 + 1
        tails[1::2] = np.arange(pairs) * 2 + 1
        heads[1::2] = np.arange(pairs) * 2
        w = np.ones(self.N, dtype=np.int64)
        g = DiGraph(self.N, tails, heads, w, w)
        cycles = decompose_into_cycles(g, list(range(self.N)))
        assert len(cycles) == pairs
        assert all(len(c) == 2 for c in cycles)

    def test_decompose_flow_many_cycles(self):
        pairs = self.N // 2
        tails = np.empty(self.N, dtype=np.int64)
        heads = np.empty(self.N, dtype=np.int64)
        tails[0::2] = np.arange(pairs) * 2
        heads[0::2] = np.arange(pairs) * 2 + 1
        tails[1::2] = np.arange(pairs) * 2 + 1
        heads[1::2] = np.arange(pairs) * 2
        w = np.ones(self.N, dtype=np.int64)
        g = DiGraph(self.N, tails, heads, w, w)
        paths, cycles = decompose_flow(g, list(range(self.N)), 0, 0)
        assert paths == []
        assert len(cycles) == pairs

    def test_split_closed_walk_long_figure_eight(self):
        # Two long petals sharing vertex 0: the walk revisits 0 once.
        n = self.N
        half = n // 2
        tails, heads = [], []
        # Petal A: 0 -> 1 -> ... -> half-1 -> 0.
        for i in range(half):
            tails.append(i)
            heads.append(i + 1 if i + 1 < half else 0)
        # Petal B: 0 -> half -> half+1 -> ... -> n-1 -> 0.
        tails.append(0)
        heads.append(half)
        for i in range(half, n - 1):
            tails.append(i)
            heads.append(i + 1)
        tails.append(n - 1)
        heads.append(0)
        m = len(tails)
        g = DiGraph(
            n,
            np.array(tails, dtype=np.int64),
            np.array(heads, dtype=np.int64),
            np.ones(m, dtype=np.int64),
            np.ones(m, dtype=np.int64),
        )
        cycles = split_closed_walk(g, list(range(m)))
        assert sorted(len(c) for c in cycles) == sorted([half, m - half])

    def test_bellman_ford_long_negative_cycle(self):
        g = _ring(600)
        neg = g.with_weights(-np.ones(600, dtype=np.int64), g.delay)
        cyc = find_negative_cycle(neg)
        assert cyc is not None and len(cyc) == 600
        assert int(neg.cost[np.asarray(cyc)].sum()) == -600


# ---------------------------------------------------------------------------
# satellite regressions: transform copy-on-write and aliasing safety
# ---------------------------------------------------------------------------


class TestTransformCopyOnWrite:
    def test_inject_no_edges_shares_arrays(self):
        from repro.graph.transform import inject_parallel_edges

        g = gnp_digraph(8, 0.4, rng=0)
        child = inject_parallel_edges(g, [])
        assert np.shares_memory(child.cost, g.cost)
        assert np.shares_memory(child.delay, g.delay)
        assert np.shares_memory(child.tail, g.tail)

    def test_subdivide_no_edges_shares_arrays(self):
        from repro.graph.transform import subdivide_edges

        g = gnp_digraph(8, 0.4, rng=0)
        child = subdivide_edges(g, [])
        assert np.shares_memory(child.cost, g.cost)

    def test_mutating_child_never_changes_parent(self):
        """A COW child handed to a mutating helper must leave the parent
        (and the COW sibling) untouched — fresh arrays on every mutation."""
        from repro.graph.transform import inject_parallel_edges, subdivide_edges

        g = anticorrelated_weights(gnp_digraph(8, 0.5, rng=3), rng=3)
        child = inject_parallel_edges(g, [])  # shares g's arrays
        before = (g.tail.copy(), g.head.copy(), g.cost.copy(), g.delay.copy())
        grandchild = subdivide_edges(child, [0, 1])
        assert grandchild.m == child.m + 2
        mutated = inject_parallel_edges(child, [0], cost_jitter=2, rng=1)
        assert mutated.m == child.m + 1
        for arr, ref in zip(("tail", "head", "cost", "delay"), before):
            assert np.array_equal(getattr(g, arr), ref), arr

    def test_scaling_shares_unscaled_arrays(self):
        from repro.core import scale_instance

        g = anticorrelated_weights(gnp_digraph(8, 0.5, rng=2), rng=2)
        inst = KRSPInstance(g, 0, 7, 2, 10)
        scaled = scale_instance(inst, 0.5, 0.5, cost_estimate=1)
        # Tiny thetas: neither criterion is scaled, so both arrays share.
        assert np.shares_memory(scaled.instance.graph.cost, g.cost)
        assert np.shares_memory(scaled.instance.graph.delay, g.delay)


# ---------------------------------------------------------------------------
# structural churn seams (online re-solving, PR 6)
# ---------------------------------------------------------------------------


class TestStructuralChurn:
    """Edge removal/addition/reweight across the graph -> residual ->
    aux-cache -> engine stack: every mutated structure must be
    bit-identical to a from-scratch rebuild, the third sanctioned
    mutation path besides flips and weight scaling."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_remove_edges_csr_and_idmap_match_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 12))
        m = int(rng.integers(2, 30))
        g = DiGraph(
            n,
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
            rng.integers(-5, 9, size=m),
            rng.integers(-5, 9, size=m),
        )
        g.out_edges(0)
        g.in_edges(0)
        doomed = sorted(
            int(e)
            for e in rng.choice(m, size=int(rng.integers(1, m)), replace=False)
        )
        id_map = g.remove_edges(doomed)
        # id-map semantics: -1 for removed, dense renumbering otherwise.
        removed = np.zeros(m, dtype=bool)
        removed[doomed] = True
        expect = np.where(removed, -1, np.cumsum(~removed) - 1)
        assert np.array_equal(id_map, expect)
        assert g.m == m - len(doomed)
        fresh = DiGraph(
            g.n, g.tail.copy(), g.head.copy(), g.cost.copy(), g.delay.copy()
        )
        for v in range(n):
            assert np.array_equal(g.out_edges(v), fresh.out_edges(v)), v
            assert np.array_equal(g.in_edges(v), fresh.in_edges(v)), v

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_add_edges_csr_matches_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 12))
        m = int(rng.integers(1, 25))
        g = DiGraph(
            n,
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
            rng.integers(-5, 9, size=m),
            rng.integers(-5, 9, size=m),
        )
        g.out_edges(0)
        g.in_edges(0)
        extra = int(rng.integers(1, 6))
        new_ids = g.add_edges(
            rng.integers(0, n, size=extra),
            rng.integers(0, n, size=extra),
            rng.integers(0, 9, size=extra),
            rng.integers(0, 9, size=extra),
        )
        assert list(new_ids) == list(range(m, m + extra))
        fresh = DiGraph(
            g.n, g.tail.copy(), g.head.copy(), g.cost.copy(), g.delay.copy()
        )
        for v in range(n):
            assert np.array_equal(g.out_edges(v), fresh.out_edges(v)), v
            assert np.array_equal(g.in_edges(v), fresh.in_edges(v)), v

    def test_remove_edges_rejects_bad_ids(self):
        g = DiGraph(2, [0], [1], [3], [4])
        with pytest.raises(GraphError):
            g.remove_edges([1])
        # Duplicates collapse (np.unique); empty removal is the identity.
        g2 = DiGraph(3, [0, 1], [1, 2], [3, 4], [5, 6])
        assert list(g2.remove_edges([0, 0])) == [-1, 0]
        assert list(g2.remove_edges([])) == [0]

    def test_residual_remove_refuses_flow_edges(self):
        rng = np.random.default_rng(13)
        full = _random_residual_full(rng)
        base, rev, res = full
        if not rev:
            rev = [0]
            res = build_residual(base, rev)
        with pytest.raises(GraphError):
            res.remove_edges([rev[0]])
        idle = [e for e in range(base.m) if e not in set(rev)]
        if idle:
            doomed = idle[0]
            id_map = res.remove_edges([doomed])
            new_rev = sorted(int(id_map[e]) for e in rev)
            fresh = build_residual(
                DiGraph(
                    base.n,
                    np.delete(base.tail, doomed),
                    np.delete(base.head, doomed),
                    np.delete(base.cost, doomed),
                    np.delete(base.delay, doomed),
                ),
                new_rev,
            )
            assert np.array_equal(res.reversed_mask, fresh.reversed_mask)
            for arr in ("tail", "head", "cost", "delay"):
                assert np.array_equal(
                    getattr(res.graph, arr), getattr(fresh.graph, arr)
                ), arr

    def test_residual_reweight_signs_and_version(self):
        g = DiGraph(3, [0, 1, 0], [1, 2, 2], [2, 3, 4], [5, 6, 7])
        res = build_residual(g, [1])  # edge 1 reversed
        v0 = res.version
        touched = res.reweight_edges([0, 1], [10, 20], [30, 40])
        assert list(touched) == [0, 1]
        assert res.version == v0 + 1
        assert res.graph.cost[0] == 10 and res.graph.delay[0] == 30
        # Reversed edge stores negated weights (Definition 6).
        assert res.graph.cost[1] == -20 and res.graph.delay[1] == -40
        with pytest.raises(GraphError):
            res.reweight_edges([0], [-1], [0])

    def test_residual_add_edges_extends_mask(self):
        g = DiGraph(3, [0, 1], [1, 2], [2, 3], [5, 6])
        res = build_residual(g, [0])
        new_ids = res.add_edges([0], [2], [9], [9])
        assert list(new_ids) == [2]
        assert res.m == 3
        assert not res.reversed_mask[2]
        fresh = build_residual(
            DiGraph(3, [0, 1, 0], [1, 2, 2], [2, 3, 9], [5, 6, 9]), [0]
        )
        for arr in ("tail", "head", "cost", "delay"):
            assert np.array_equal(
                getattr(res.graph, arr), getattr(fresh.graph, arr)
            ), arr

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_auxcache_reweight_serves_fresh_builds(self, seed):
        rng = np.random.default_rng(seed)
        res = _random_residual(rng)
        if res is None or res.graph.m < 2:
            return
        cache = AuxCache(res)
        for B in (1, 2, 4):
            cache.get(B)
        m = res.graph.m
        eids = sorted(
            int(e)
            for e in rng.choice(m, size=int(rng.integers(1, m + 1)), replace=False)
        )
        touched = res.reweight_edges(
            eids, rng.integers(0, 9, size=len(eids)), rng.integers(0, 9, size=len(eids))
        )
        cache.note_reweight(touched)
        for B in (1, 2, 4):
            _assert_aux_equal(cache.get(B), build_aux_shifted(res.graph, B))

    def test_auxcache_reweight_counters(self):
        res = build_residual(DiGraph(3, [0, 1, 0], [1, 2, 2], [1, 1, 2], [1, 1, 1]), [])
        with obs.session():
            cache = AuxCache(res)
            cache.get(2)
            # Same |cost| layout: parity patch.
            touched = res.reweight_edges([0], [1], [5])
            cache.note_reweight(touched)
            # Layout change on some level: drop.
            touched = res.reweight_edges([0], [7], [5])
            cache.note_reweight(touched)
            snap = obs.snapshot()
        assert snap.get("search.aux_cache.reweight_patch", 0) >= 1
        assert snap.get("search.aux_cache.reweight_drop", 0) >= 1
        _assert_aux_equal(cache.get(2), build_aux_shifted(res.graph, 2))

    def test_auxcache_structural_change_clears(self):
        rng = np.random.default_rng(9)
        res = _random_residual(rng)
        with obs.session():
            cache = AuxCache(res)
            cache.get(2)
            cache.note_structural_change()
            cache.get(2)
            snap = obs.snapshot()
        assert snap.get("search.aux_cache.structural_drop", 0) == 1
        assert snap["search.aux_cache.miss"] == 2
        _assert_aux_equal(cache.get(2), build_aux_shifted(res.graph, 2))

    def test_engine_structural_roundtrip_matches_scratch(self):
        """reweight -> remove -> add through IncrementalSearch equals a
        from-scratch residual of the mutated graph."""
        g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=5), rng=6)
        engine = IncrementalSearch(g)
        sol = [0, 2, 4]
        engine.residual_for(sol)
        engine.apply_reweight([0, 1], [3, 4], [5, 6])
        idle = next(e for e in range(g.m) if e not in sol and e > 4)
        id_map = engine.remove_edges([idle])
        engine.add_edges([0], [g.n - 1], [2], [2])
        res = engine.residual
        base = res.graph
        new_sol = sorted(int(id_map[e]) for e in sol)
        fresh = build_residual(
            DiGraph(
                base.n,
                np.where(res.reversed_mask, base.head, base.tail),
                np.where(res.reversed_mask, base.tail, base.head),
                np.abs(base.cost),
                np.abs(base.delay),
            ),
            new_sol,
        )
        assert np.array_equal(res.reversed_mask, fresh.reversed_mask)
        for arr in ("tail", "head", "cost", "delay"):
            assert np.array_equal(
                getattr(res.graph, arr), getattr(fresh.graph, arr)
            ), arr
        # The aux provider serves the mutated residual bit-identically.
        _assert_aux_equal(
            engine.aux_provider(res.graph, 2), build_aux_shifted(res.graph, 2)
        )

    def test_engine_structural_ops_require_residual(self):
        g = DiGraph(2, [0], [1], [1], [1])
        engine = IncrementalSearch(g)
        with pytest.raises(GraphError):
            engine.apply_reweight([0], [1], [1])
        with pytest.raises(GraphError):
            engine.remove_edges([0])
        with pytest.raises(GraphError):
            engine.add_edges([0], [1], [1], [1])
