"""Documentation completeness gates.

Every public name must carry a docstring, and the repository's top-level
documents must exist and reference each other — documentation is a
deliverable here, so it gets tests like any other component.
"""

import importlib
import inspect
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

PUBLIC_PACKAGES = [
    "repro",
    "repro.graph",
    "repro.paths",
    "repro.flow",
    "repro.lp",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.oracle",
    "repro.obs",
    "repro.robustness",
    "repro.online",
    "repro.service",
]


@pytest.mark.parametrize("mod_name", PUBLIC_PACKAGES)
def test_all_public_names_documented(mod_name):
    mod = importlib.import_module(mod_name)
    assert (inspect.getdoc(mod) or "").strip(), f"{mod_name} lacks a docstring"
    missing = []
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(name)
    assert not missing, f"{mod_name}: undocumented public names {missing}"


@pytest.mark.parametrize(
    "fname",
    ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/ALGORITHM.md",
     "docs/API.md", "docs/TESTING.md", "docs/OBSERVABILITY.md",
     "docs/ROBUSTNESS.md", "docs/ONLINE.md", "docs/SERVICE.md"],
)
def test_top_level_documents_exist(fname):
    path = ROOT / fname
    assert path.exists() and path.stat().st_size > 500, f"{fname} missing or stub"


def test_design_lists_every_experiment():
    design = (ROOT / "DESIGN.md").read_text()
    from repro.eval import EXPERIMENTS

    # The per-experiment index must at least mention the core ids (the
    # ablations/stress rows were added later and live in EXPERIMENTS.md).
    for exp_id in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "F1", "F2"):
        assert exp_id in design, f"DESIGN.md missing experiment {exp_id}"


def test_every_module_has_docstring():
    src = ROOT / "src" / "repro"
    missing = []
    for py in src.rglob("*.py"):
        text = py.read_text()
        stripped = text.lstrip()
        if not stripped:
            continue  # empty __init__ ok
        if not stripped.startswith(('"""', "'''", 'r"""', "#")):
            missing.append(str(py.relative_to(src)))
    assert not missing, f"modules without leading docstring: {missing}"


def test_every_emitted_counter_is_documented():
    """Every counter/gauge/histogram name the code emits must appear in
    docs/OBSERVABILITY.md — the glossary is a deliverable, and telemetry
    nobody can look up is noise. Dynamic families (f-string names) are
    checked by their static prefix."""
    import re

    docs = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
    # Expand slash-grouped glossary entries like
    # `search.aux_cache.hit/miss/evict` into full dotted names.
    vocab = set()
    for token in re.findall(r"`([^`\n]+)`", docs):
        parts = token.split("/")
        if "." not in parts[0]:
            continue
        vocab.add(parts[0])
        prefix = parts[0].rsplit(".", 1)[0] + "."
        vocab.update(prefix + p for p in parts[1:])

    call_re = re.compile(
        r'(?:\bobs\.(?:inc|add|gauge)|\bobserve|\badd_counter)\(\s*(f?)"([^"]+)"'
    )
    undocumented = []
    for py in (ROOT / "src" / "repro").rglob("*.py"):
        for is_fstring, name in call_re.findall(py.read_text()):
            if is_fstring:
                name = name.split("{", 1)[0].rstrip(".")
            if name in docs or name in vocab:
                continue
            undocumented.append(f"{py.relative_to(ROOT)}: {name}")
    assert not undocumented, (
        "counters emitted but missing from docs/OBSERVABILITY.md glossary:\n  "
        + "\n  ".join(sorted(set(undocumented)))
    )


def test_doctests_pass():
    """Run doctests embedded in docstrings (executable documentation)."""
    import doctest

    import repro._util.timer as timer_mod

    for mod in (timer_mod,):
        failures, _ = doctest.testmod(mod)
        assert failures == 0, f"doctest failures in {mod.__name__}"
