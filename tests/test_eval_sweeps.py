"""Tests for the parameter-grid sweep machinery."""

import pytest

from repro.eval import Sweep, pivot, run_sweep


class TestSweepGrid:
    def test_cells_cartesian_product(self):
        s = Sweep(
            family="er_anticorrelated",
            family_params={"n": [10, 12], "tightness": [0.4, 0.6]},
        )
        cells = s.cells()
        assert len(cells) == 4
        assert {"n": 10, "tightness": 0.4} in cells

    def test_empty_params_single_cell(self):
        s = Sweep(family="er_anticorrelated")
        assert s.cells() == [{}]

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            run_sweep(Sweep(family="nope"))

    def test_unknown_solver_rejected(self):
        with pytest.raises(KeyError):
            run_sweep(
                Sweep(family="er_anticorrelated", solvers=["nope"], n_instances=1)
            )


class TestRunSweep:
    def test_records_tagged_with_cell(self):
        s = Sweep(
            family="er_anticorrelated",
            family_params={"n": [10], "tightness": [0.5]},
            solvers=["minsum"],
            n_instances=10,
            seed=31,
        )
        records = run_sweep(s)
        assert records
        for r in records:
            assert r.extra["n"] == 10 and r.extra["tightness"] == 0.5
            assert r.solver == "minsum"

    def test_serial_and_parallel_agree(self):
        s = Sweep(
            family="er_anticorrelated",
            family_params={"n": [10]},
            solvers=["bicameral"],
            n_instances=6,
            seed=32,
        )
        serial = run_sweep(s, parallel=False)
        par = run_sweep(s, parallel=True, max_workers=2)
        assert [(r.seed, r.cost, r.delay) for r in serial] == [
            (r.seed, r.cost, r.delay) for r in par
        ]

    def test_determinism(self):
        s = Sweep(
            family="er_anticorrelated",
            family_params={"n": [10]},
            solvers=["minsum"],
            n_instances=6,
            seed=33,
        )
        a = run_sweep(s)
        b = run_sweep(s)
        assert [(r.seed, r.cost) for r in a] == [(r.seed, r.cost) for r in b]


class TestPivot:
    def test_table_shape(self):
        s = Sweep(
            family="er_anticorrelated",
            family_params={"tightness": [0.4, 0.7]},
            solvers=["minsum"],
            n_instances=6,
            seed=34,
        )
        records = run_sweep(s)
        table = pivot(
            records,
            row_key=lambda r: r.extra["tightness"],
            metric=lambda r: float(r.cost) if r.cost is not None else None,
        )
        assert "cost_mean" in table
        # one row per (tightness, solver) present in the records
        present = {r.extra["tightness"] for r in records}
        assert len(table.splitlines()) == 2 + len(present)
