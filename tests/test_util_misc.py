"""Tests for RNG plumbing, timers and exact ratio arithmetic."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import (
    Timer,
    as_rng,
    ceil_div,
    floor_div,
    ratio_cmp,
    ratio_le,
    ratio_lt,
    spawn_rng,
)


class TestRng:
    def test_seed_determinism(self):
        a = as_rng(7).integers(0, 100, 10)
        b = as_rng(7).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert as_rng(gen) is gen

    def test_spawn_children_independent_of_consumption(self):
        parent1 = np.random.default_rng(5)
        children1 = spawn_rng(parent1, 3)
        parent2 = np.random.default_rng(5)
        _ = parent2.random(100)  # consume entropy before spawning
        # spawn() keys derive from the seed sequence, not the stream state,
        # but spawning twice from the same parent gives different children;
        # the contract we rely on: same seed + same spawn call = same streams.
        children2 = spawn_rng(np.random.default_rng(5), 3)
        for c1, c2 in zip(children1, children2):
            assert np.array_equal(c1.integers(0, 1000, 5), c2.integers(0, 1000, 5))


class TestTimer:
    def test_accumulates_and_counts(self):
        t = Timer()
        for _ in range(3):
            with t.section("work"):
                pass
        assert t.count("work") == 3
        assert t.total("work") >= 0.0
        assert t.total("absent") == 0.0 and t.count("absent") == 0

    def test_merge(self):
        a, b = Timer(), Timer()
        with a.section("x"):
            pass
        with b.section("x"):
            pass
        with b.section("y"):
            pass
        a.merge(b)
        assert a.count("x") == 2 and a.count("y") == 1
        assert set(a.as_dict()) == {"x", "y"}


nonzero = st.integers(-50, 50).filter(lambda v: v != 0)


class TestRatio:
    @given(st.integers(-50, 50), nonzero, st.integers(-50, 50), nonzero)
    def test_matches_fraction(self, n1, d1, n2, d2):
        f1, f2 = Fraction(n1, d1), Fraction(n2, d2)
        expected = -1 if f1 < f2 else (1 if f1 > f2 else 0)
        assert ratio_cmp(n1, d1, n2, d2) == expected
        assert ratio_le(n1, d1, n2, d2) == (f1 <= f2)
        assert ratio_lt(n1, d1, n2, d2) == (f1 < f2)

    def test_zero_denominator_raises(self):
        with pytest.raises(ZeroDivisionError):
            ratio_cmp(1, 0, 1, 1)
        with pytest.raises(ZeroDivisionError):
            ratio_cmp(1, 1, 1, 0)

    def test_negative_denominators(self):
        # -3/-2 = 1.5 > 1/1
        assert ratio_cmp(-3, -2, 1, 1) == 1
        # 3/-2 = -1.5 < 1/1
        assert ratio_cmp(3, -2, 1, 1) == -1


class TestIntDiv:
    @given(st.integers(-1000, 1000), st.integers(1, 100))
    def test_floor_ceil_consistency(self, a, b):
        assert floor_div(a, b) == a // b
        assert ceil_div(a, b) == -((-a) // b)
        assert floor_div(a, b) <= ceil_div(a, b)
        if a % b == 0:
            assert floor_div(a, b) == ceil_div(a, b)

    def test_nonpositive_divisor_rejected(self):
        with pytest.raises(ValueError):
            floor_div(5, 0)
        with pytest.raises(ValueError):
            ceil_div(5, -2)
