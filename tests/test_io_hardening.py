"""Untrusted-input fuzzing for :mod:`repro.graph.io`.

Contract: no matter what bytes are on disk, loading raises the typed
:class:`~repro.errors.InputError` or returns a valid object — never a
raw ``ValueError``/``KeyError``/NumPy cast error, and never a silently
corrupted instance (floats truncated to ints, NaN smuggled into weights,
reordered edge ids).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import InputError
from repro.graph.generators import gnp_digraph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.graph.weights import uniform_weights


def _instance_dict():
    g = uniform_weights(gnp_digraph(8, 0.4, rng=3), rng=4)
    return instance_to_dict(g, 0, 7, 2, 50)


@pytest.fixture()
def inst_path(tmp_path):
    g = uniform_weights(gnp_digraph(8, 0.4, rng=3), rng=4)
    path = tmp_path / "inst.json"
    save_instance(path, g, 0, 7, 2, 50)
    return path


def test_truncated_files_raise_input_error(tmp_path, inst_path):
    raw = inst_path.read_bytes()
    # Every strict prefix is invalid JSON or an incomplete schema.
    for frac in (0.0, 0.1, 0.35, 0.6, 0.9, 0.99):
        cut = int(len(raw) * frac)
        p = tmp_path / f"trunc{cut}.json"
        p.write_bytes(raw[:cut])
        with pytest.raises(InputError):
            load_instance(p)


def test_bit_flipped_files_never_leak_raw_exceptions(tmp_path, inst_path):
    raw = bytearray(inst_path.read_bytes())
    rng = np.random.default_rng(2015)
    for trial in range(200):
        mutated = bytearray(raw)
        for pos in rng.integers(0, len(raw), size=rng.integers(1, 4)):
            mutated[pos] ^= 1 << int(rng.integers(0, 8))
        p = tmp_path / "flip.json"
        p.write_bytes(bytes(mutated))
        try:
            g, s, t, k, bound = load_instance(p)
        except InputError:
            continue  # rejected loudly: the contract
        # A lucky flip (e.g. one digit of a weight) may still be a valid
        # instance; it must then be fully validated data.
        assert 0 <= s < g.n and 0 <= t < g.n and k >= 1 and bound >= 0
        assert int(g.cost.min()) >= 0 and int(g.delay.min()) >= 0


def test_binary_garbage_rejected(tmp_path):
    p = tmp_path / "noise.json"
    p.write_bytes(bytes(range(256)) * 8)
    with pytest.raises(InputError):
        load_instance(p)


def test_missing_file_rejected(tmp_path):
    with pytest.raises(InputError):
        load_instance(tmp_path / "absent.json")


def test_nan_and_infinity_weights_rejected(tmp_path):
    # Python's json module happily parses NaN/Infinity literals.
    d = _instance_dict()
    text = json.dumps(d).replace(
        json.dumps(d["graph"]["cost"]),
        "[NaN" + ", 1" * (len(d["graph"]["cost"]) - 1) + "]",
    )
    p = tmp_path / "nan.json"
    p.write_text(text)
    with pytest.raises(InputError):
        load_instance(p)


def test_float_weights_rejected_not_truncated():
    d = _instance_dict()
    d["graph"]["cost"][0] = 1.9  # np.int64 cast would silently make this 1
    with pytest.raises(InputError, match="expected an integer"):
        instance_from_dict(d)


def test_bool_weight_rejected():
    d = _instance_dict()
    d["graph"]["delay"][0] = True  # bool is an int subclass; still corruption
    with pytest.raises(InputError):
        instance_from_dict(d)


def test_int64_overflow_rejected():
    d = _instance_dict()
    d["graph"]["cost"][0] = 2**63
    with pytest.raises(InputError, match="overflows int64"):
        instance_from_dict(d)


def test_negative_weight_rejected_for_instances():
    d = _instance_dict()
    d["graph"]["cost"][0] = -5
    with pytest.raises(InputError):
        instance_from_dict(d)
    # ...but plain graphs may carry negative weights (residual shipping).
    gd = d["graph"]
    assert graph_from_dict(gd).m == len(gd["tail"])


def test_out_of_range_endpoint_rejected():
    d = _instance_dict()
    d["graph"]["head"][0] = d["graph"]["n"] + 3
    with pytest.raises(InputError):
        instance_from_dict(d)


def test_terminals_and_query_range_checked():
    for key, bad in (("s", -1), ("t", 99), ("k", 0), ("delay_bound", -2)):
        d = _instance_dict()
        d[key] = bad
        with pytest.raises(InputError):
            instance_from_dict(d)


def test_duplicate_edge_ids_rejected():
    d = _instance_dict()["graph"]
    m = len(d["tail"])
    d["edge_ids"] = [0] * m
    with pytest.raises(InputError, match="edge_ids"):
        graph_from_dict(d)


def test_edge_id_permutation_reorders():
    d = _instance_dict()["graph"]
    m = len(d["tail"])
    g0 = graph_from_dict(d)
    d2 = dict(d)
    perm = list(reversed(range(m)))
    d2["edge_ids"] = perm
    d2["tail"] = list(reversed(d["tail"]))
    d2["head"] = list(reversed(d["head"]))
    d2["cost"] = list(reversed(d["cost"]))
    d2["delay"] = list(reversed(d["delay"]))
    g1 = graph_from_dict(d2)
    assert graph_to_dict(g1) == graph_to_dict(g0)


def test_wrong_toplevel_shape_rejected():
    for bad in ([1, 2, 3], "nope", 7, None):
        with pytest.raises(InputError):
            instance_from_dict(bad)  # type: ignore[arg-type]
