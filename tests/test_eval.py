"""Tests for the evaluation harness, metrics, workloads and reporting."""

import pytest

from repro.errors import InfeasibleInstanceError
from repro.eval import (
    EXPERIMENTS,
    WORKLOADS,
    figure1_instance,
    figure2_instance,
    format_series,
    format_table,
    group_by,
    interesting_delay_bound,
    measure_quality,
    run_trials,
    summarize,
)
from repro.eval.workloads import er_anticorrelated
from repro.graph import gnp_digraph, anticorrelated_weights
from repro.lp.milp import solve_krsp_milp


class TestWorkloads:
    def test_er_deterministic(self):
        a = list(er_anticorrelated(n=10, n_instances=4, seed=5))
        b = list(er_anticorrelated(n=10, n_instances=4, seed=5))
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.seed == y.seed and x.delay_bound == y.delay_bound
            assert x.graph == y.graph

    def test_budget_in_interesting_band(self):
        for inst in er_anticorrelated(n=10, n_instances=6, seed=6):
            # Feasible by construction (bound >= min achievable delay).
            exact = solve_krsp_milp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            assert exact is not None

    def test_tightness_ordering(self):
        g = anticorrelated_weights(gnp_digraph(12, 0.4, rng=3), rng=4)
        loose = interesting_delay_bound(g, 0, 11, 2, tightness=0.1)
        tight = interesting_delay_bound(g, 0, 11, 2, tightness=0.9)
        if loose is not None and tight is not None:
            assert tight <= loose

    def test_registry(self):
        assert len(WORKLOADS) == 7
        assert "ring_anticorrelated" in WORKLOADS


class TestHarness:
    def test_run_trials_records_failures(self):
        instances = list(er_anticorrelated(n=10, n_instances=8, seed=9))
        assert instances, "workload emitted no instances"

        def good(inst):
            return 1, 2, {}

        def bad(inst):
            raise InfeasibleInstanceError("nope")

        records = run_trials(instances, {"good": good, "bad": bad})
        assert len(records) == 2 * len(instances)
        by_solver = group_by(records, lambda r: r.solver)
        assert all(r.status == "ok" for r in by_solver["good"])
        assert all(r.status == "infeasible" for r in by_solver["bad"])

    def test_timing_captured(self):
        instances = list(er_anticorrelated(n=10, n_instances=1, seed=9))
        records = run_trials(instances, {"x": lambda i: (0, 0, {})})
        assert all(r.seconds >= 0 for r in records)


class TestMetrics:
    def test_exact_normalization(self):
        g = anticorrelated_weights(gnp_digraph(10, 0.45, rng=11), rng=12)
        exact = solve_krsp_milp(g, 0, 9, 2, 50)
        if exact is None:
            pytest.skip("infeasible seed")
        rep = measure_quality(g, 0, 9, 2, 50, cost=exact.cost, delay=exact.delay)
        assert rep.beta_is_exact and rep.beta == pytest.approx(1.0)
        assert rep.alpha <= 1.0
        assert rep.lp_bound is not None and rep.lp_bound <= exact.cost + 1e-6

    def test_lp_fallback(self):
        g = anticorrelated_weights(gnp_digraph(10, 0.45, rng=11), rng=12)
        rep = measure_quality(g, 0, 9, 2, 50, cost=30, delay=20, use_milp=False)
        assert not rep.beta_is_exact

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["mean"] == 2.0 and s["max"] == 3.0 and s["count"] == 3
        assert summarize([])["count"] == 0


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5
        assert "2.500" in out

    def test_format_series(self):
        out = format_series("x", ["y"], [(1, [2.0]), (2, [3.0])])
        assert "x" in out and "2.000" in out

    def test_empty_rows(self):
        out = format_table(["h"], [])
        assert "h" in out


class TestFigures:
    def test_figure1_shape(self):
        for D in (4, 9):
            g, ids = figure1_instance(D, c_opt=10)
            exact = solve_krsp_milp(g, ids["s"], ids["t"], 2, D)
            assert exact is not None and exact.cost == 10 and exact.delay == D

    def test_figure1_trap_route_exists(self):
        D = 6
        g, ids = figure1_instance(D, c_opt=10)
        # The trap solution {s-a-t, s-t} has delay 0, cost 10*(D+1)-1.
        exact_zero = solve_krsp_milp(g, ids["s"], ids["t"], 2, 0)
        assert exact_zero is not None
        assert exact_zero.cost == 10 * (D + 1) - 1

    def test_figure1_rejects_small_d(self):
        with pytest.raises(ValueError):
            figure1_instance(1)

    def test_figure2_residual_wellformed(self):
        from repro.core import build_residual

        g, ids, path = figure2_instance()
        assert g.n == 5
        res = build_residual(g, path)
        assert res.reversed_mask.sum() == 4


class TestExperimentRegistry:
    def test_all_registered(self):
        assert set(EXPERIMENTS) == {
            "f1",
            "f2",
            "e1",
            "e2",
            "e3",
            "e4",
            "e5",
            "e6",
            "e7",
            "e8",
            "e9",
            "a1",
            "a2",
            "a3",
            "e10",
            "e11",
        }

    @pytest.mark.parametrize("exp", ["f2", "e9"])
    def test_cheap_experiments_run(self, exp):
        headers, rows = EXPERIMENTS[exp]()
        assert headers and rows
        for row in rows:
            assert len(row) == len(headers)


class TestTraceFormatting:
    def test_format_trace_renders_records(self):
        from repro.core import solve_krsp
        from repro.eval import format_trace
        from repro.graph import from_edges

        g, ids = from_edges(
            [("s", "a", 1, 9), ("a", "t", 1, 9), ("s", "b", 5, 1), ("b", "t", 5, 1)]
        )
        sol = solve_krsp(g, ids["s"], ids["t"], 1, 5, phase1="minsum")
        out = format_trace(sol.records)
        assert "cancellation trace" in out
        assert "TYPE" in out and "-16" in out

    def test_format_trace_empty(self):
        from repro.eval import format_trace

        out = format_trace([])
        assert "cancellation trace" in out
