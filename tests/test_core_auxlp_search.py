"""Tests for the ratio LP, fractional peeling, and the search driver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CycleType,
    build_aux_shifted,
    build_residual,
    classify,
    find_bicameral_candidates,
    find_bicameral_cycle,
)
from repro.core.auxlp import candidates_from_circulation, peel_fractional_cycles, solve_ratio_lp
from repro.core.search import SearchStats
from repro.graph import from_edges, gnp_digraph, uniform_weights, anticorrelated_weights
from repro.graph.validate import is_cycle
from repro._util.intmath import ratio_cmp


@pytest.fixture
def tradeoff_residual():
    """Residual with a clean type-1 cycle: swap slow-cheap for fast-pricey."""
    g, ids = from_edges(
        [
            ("s", "a", 1, 9),  # 0 in solution (cheap, slow)
            ("a", "t", 1, 9),  # 1 in solution
            ("s", "b", 5, 1),  # 2 (pricey, fast)
            ("b", "t", 5, 1),  # 3
        ]
    )
    return g, ids, build_residual(g, [0, 1])


class TestRatioLp:
    def test_finds_positive_cost_cycle(self, tradeoff_residual):
        g, ids, res = tradeoff_residual
        B = int(np.abs(res.graph.cost).sum())
        aux = build_aux_shifted(res.graph, B)
        x = solve_ratio_lp(aux, +1)
        assert x is not None
        cands = candidates_from_circulation(aux, res.graph, x)
        assert cands
        # The reroute cycle: 2,3 forward + 0,1 reversed = cost 8, delay -16.
        best = min(cands, key=lambda c: c.delay / c.cost if c.cost > 0 else 0)
        assert best.cost == 8 and best.delay == -16

    def test_negative_sign_finds_reverse_cycle(self, tradeoff_residual):
        g, ids, res = tradeoff_residual
        # Flip the solution: now the pricey path is held, so the cycle that
        # swaps back has negative cost.
        res2 = build_residual(g, [2, 3])
        aux = build_aux_shifted(res2.graph, int(np.abs(res2.graph.cost).sum()))
        x = solve_ratio_lp(aux, -1)
        assert x is not None
        cands = candidates_from_circulation(aux, res2.graph, x)
        assert any(c.cost < 0 for c in cands)

    def test_none_when_no_cycles(self):
        g, ids = from_edges([("s", "a", 1, 1), ("a", "t", 1, 1)])
        res = build_residual(g, [])
        aux = build_aux_shifted(res.graph, 2)
        assert solve_ratio_lp(aux, +1) is None

    def test_ratio_optimality(self):
        """LP finds a min-ratio cycle among several options."""
        g, ids = from_edges(
            [
                ("s", "a", 1, 6),  # 0 in solution
                ("a", "t", 1, 6),  # 1 in solution
                ("s", "b", 2, 1),  # 2: reroute A, cycle cost 2, delay -10
                ("b", "t", 2, 1),  # 3
                ("s", "c", 9, 1),  # 4: reroute B, cycle cost 16, delay -10
                ("c", "t", 9, 1),  # 5
            ]
        )
        res = build_residual(g, [0, 1])
        aux = build_aux_shifted(res.graph, int(np.abs(res.graph.cost).sum()))
        x = solve_ratio_lp(aux, +1)
        cands = candidates_from_circulation(aux, res.graph, x)
        pos = [c for c in cands if c.cost > 0 and c.delay < 0]
        assert pos
        best = min(pos, key=lambda c: c.delay / c.cost)
        # Best ratio is reroute A: -10/2 = -5.
        assert ratio_cmp(best.delay, best.cost, -10, 2) <= 0


class TestPeel:
    def test_integral_circulation(self):
        g, ids = from_edges([("a", "b", 1, 1), ("b", "a", 1, 1)])
        cycles = peel_fractional_cycles(g, np.array([1.0, 1.0]))
        assert len(cycles) == 1 and sorted(cycles[0]) == [0, 1]

    def test_fractional_overlapping(self):
        # Two cycles sharing vertex a with different mass.
        g, ids = from_edges(
            [
                ("a", "b", 1, 1),  # 0
                ("b", "a", 1, 1),  # 1
                ("a", "c", 1, 1),  # 2
                ("c", "a", 1, 1),  # 3
            ]
        )
        x = np.array([0.75, 0.75, 0.25, 0.25])
        cycles = peel_fractional_cycles(g, x)
        keys = sorted(tuple(sorted(c)) for c in cycles)
        assert keys == [(0, 1), (2, 3)]

    def test_empty(self):
        g, ids = from_edges([("a", "b", 1, 1)])
        assert peel_fractional_cycles(g, np.zeros(1)) == []

    def test_noise_below_tolerance_ignored(self):
        g, ids = from_edges([("a", "b", 1, 1), ("b", "a", 1, 1)])
        assert peel_fractional_cycles(g, np.array([1e-9, 1e-9])) == []


class TestSearchDriver:
    def test_type0_short_circuit(self):
        # Solution on pricey-fast path; the cheap-slow alternative would be
        # a (negative cost, positive delay) swap: no type-0. Make one:
        # parallel edge strictly better in both criteria.
        g, ids = from_edges(
            [
                ("s", "t", 9, 9),  # 0 in solution
                ("s", "t", 1, 1),  # 1 dominating alternative
            ]
        )
        res = build_residual(g, [0])
        stats = SearchStats()
        cands = find_bicameral_candidates(res, stats=stats)
        assert stats.short_circuited_type0
        assert any(
            classify(c.cost, c.delay, -1, None, None) is CycleType.TYPE0 for c in cands
        )
        # Probe-only: no LP was ever built.
        assert stats.lp_solves == 0

    def test_find_cycle_returns_certified_type1(self, ):
        g, ids = from_edges(
            [
                ("s", "a", 1, 9),
                ("a", "t", 1, 9),
                ("s", "b", 5, 1),
                ("b", "t", 5, 1),
            ]
        )
        res = build_residual(g, [0, 1])
        # delta_d = -16 (need to shed 16), delta_c = 100 (plenty of slack).
        picked = find_bicameral_cycle(res, -16, 100, None)
        assert picked is not None
        cand, ctype = picked
        assert ctype is CycleType.TYPE1
        assert cand.cost == 8 and cand.delay == -16

    def test_find_cycle_none_when_no_cycles(self):
        g, ids = from_edges([("s", "a", 1, 1), ("a", "t", 1, 1)])
        res = build_residual(g, [])
        assert find_bicameral_cycle(res, -5, 10, None) is None

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 50_000))
    def test_candidates_are_genuine_cycles(self, seed):
        g = anticorrelated_weights(gnp_digraph(8, 0.4, rng=seed), rng=seed + 1)
        from repro.flow import suurballe_k_paths

        paths = suurballe_k_paths(g, 0, 7, 2)
        if paths is None:
            return
        sol = sorted(e for p in paths for e in p)
        res = build_residual(g, sol)
        cands = find_bicameral_candidates(res)
        for c in cands:
            assert is_cycle(res.graph, list(c.edges))
            assert res.graph.cost_of(list(c.edges)) == c.cost
            assert res.graph.delay_of(list(c.edges)) == c.delay
