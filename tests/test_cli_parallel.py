"""Tests for the CLI and the process-parallel harness."""

import json

import pytest

from repro.cli import main
from repro.eval.parallel import run_trials_parallel
from repro.eval.workloads import er_anticorrelated


class TestCli:
    def test_generate_then_solve_round_trip(self, tmp_path, capsys):
        out = tmp_path / "inst.json"
        rc = main(["generate", "--family", "er", "--n", "12", "--seed", "3",
                   "-o", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert {"graph", "s", "t", "k", "delay_bound"} <= set(payload)

        rc = main(["solve", str(out)])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "cost=" in captured and "path 1:" in captured

    def test_solve_with_eps_and_provider(self, tmp_path, capsys):
        out = tmp_path / "inst.json"
        assert main(["generate", "--n", "12", "--seed", "3", "-o", str(out)]) == 0
        rc = main(["solve", str(out), "--eps", "0.5", "--phase1", "minsum"])
        assert rc == 0

    def test_experiment_command(self, capsys):
        rc = main(["experiment", "f2"])
        assert rc == 0
        assert "H_nodes" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "zz"])
        assert rc == 2

    def test_generate_grid(self, tmp_path):
        out = tmp_path / "grid.json"
        rc = main(["generate", "--family", "grid", "--n", "16", "--seed", "1",
                   "-o", str(out)])
        assert rc in (0, 3)  # grid corners support only k=2; 3 = no band

    def test_bad_instance_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"graph": {"schema": 99}}))
        rc = main(["solve", str(bad)])  # typed InputError -> exit 2, no traceback
        assert rc == 2
        assert "bad instance" in capsys.readouterr().err


class TestParallelHarness:
    def test_matches_serial_results(self):
        instances = list(er_anticorrelated(n=10, n_instances=6, seed=77))
        assert instances
        records = run_trials_parallel(
            instances, ["bicameral", "minsum"], max_workers=2
        )
        assert len(records) == 2 * len(instances)
        # Deterministic order: instance-major, solver-minor.
        assert records[0].solver == "bicameral" and records[1].solver == "minsum"
        by_key = {(r.seed, r.solver): r for r in records}
        # Cross-check one instance against an in-process solve.
        from repro.core import solve_krsp

        inst = instances[0]
        sol = solve_krsp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        rec = by_key[(inst.seed, "bicameral")]
        assert rec.status == "ok"
        assert rec.cost == sol.cost and rec.delay == sol.delay

    def test_unregistered_solver_rejected(self):
        instances = list(er_anticorrelated(n=10, n_instances=2, seed=77))
        with pytest.raises(KeyError):
            run_trials_parallel(instances, ["nonexistent"])

    def test_infeasible_becomes_record(self):
        # Budget-infeasible instances produce status records, not crashes.
        from repro.eval.workloads import WorkloadInstance
        from repro.graph import parallel_chains
        import numpy as np

        g, s, t = parallel_chains(2, 2)
        g = g.with_weights(np.ones(g.m, np.int64), np.full(g.m, 9, np.int64))
        inst = WorkloadInstance(
            name="tiny", graph=g, s=s, t=t, k=2, delay_bound=10, seed=0
        )
        records = run_trials_parallel([inst], ["bicameral"], max_workers=1)
        assert records[0].status == "infeasible"


class TestCliSweepVerify:
    def test_solve_verify_flag(self, tmp_path, capsys):
        out = tmp_path / "inst.json"
        assert main(["generate", "--n", "12", "--seed", "3", "-o", str(out)]) == 0
        rc = main(["solve", str(out), "--verify"])
        assert rc == 0
        assert "independent audit: clean" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        rc = main([
            "sweep", "er_anticorrelated",
            "--param", "tightness=0.4,0.7",
            "--solver", "minsum",
            "--n-instances", "4",
            "--seed", "9",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost_mean" in out and "minsum" in out

    def test_sweep_bad_param(self, capsys):
        rc = main(["sweep", "er_anticorrelated", "--param", "oops"])
        assert rc == 2

    def test_sweep_unknown_family(self, capsys):
        rc = main(["sweep", "not_a_family"])
        assert rc == 2
