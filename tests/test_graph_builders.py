"""Tests for the builders bridging DiGraph and friendlier forms."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graph import (
    DiGraph,
    from_edges,
    from_networkx,
    gnp_digraph,
    to_networkx,
    uniform_weights,
)


class TestFromEdges:
    def test_names_assigned_in_order(self):
        g, ids = from_edges([("x", "y", 1, 2), ("y", "z", 3, 4)])
        assert ids == {"x": 0, "y": 1, "z": 2}
        assert g.n == 3 and g.m == 2

    def test_explicit_nodes_pin_ids_and_isolates(self):
        g, ids = from_edges([("b", "c", 1, 1)], nodes=["a", "b", "c", "lonely"])
        assert ids["a"] == 0 and ids["lonely"] == 3
        assert g.n == 4
        assert g.out_degree(ids["lonely"]) == 0

    def test_duplicate_explicit_nodes_deduplicated(self):
        g, ids = from_edges([("a", "b", 1, 1)], nodes=["a", "a", "b"])
        assert g.n == 2

    def test_hashable_names(self):
        g, ids = from_edges([((1, "pop"), (2, "pop"), 5, 6)])
        assert g.m == 1 and ids[(1, "pop")] == 0

    def test_weights_coerced_to_int(self):
        g, ids = from_edges([("a", "b", 3.0, 4.0)])
        assert int(g.cost[0]) == 3 and int(g.delay[0]) == 4


class TestNetworkxRoundTrip:
    def test_round_trip_exact(self):
        g = uniform_weights(gnp_digraph(9, 0.4, rng=6), rng=7)
        back = from_networkx(to_networkx(g))
        # Edge order may permute within (u, v) groups; compare as multisets.
        def key(graph):
            return sorted(
                zip(
                    graph.tail.tolist(),
                    graph.head.tolist(),
                    graph.cost.tolist(),
                    graph.delay.tolist(),
                )
            )

        assert key(back) == key(g)

    def test_to_networkx_carries_eids(self):
        g, ids = from_edges([("a", "b", 1, 2), ("a", "b", 3, 4)])
        nxg = to_networkx(g)
        eids = sorted(d["eid"] for d in nxg[0][1].values())
        assert eids == [0, 1]

    def test_from_networkx_requires_contiguous_labels(self):
        nxg = nx.MultiDiGraph()
        nxg.add_edge("a", "b", cost=1, delay=1)
        with pytest.raises(GraphError):
            from_networkx(nxg)

    def test_from_networkx_custom_attribute_names(self):
        nxg = nx.MultiDiGraph()
        nxg.add_nodes_from([0, 1])
        nxg.add_edge(0, 1, w=5, lat=7)
        g = from_networkx(nxg, cost="w", delay="lat")
        assert int(g.cost[0]) == 5 and int(g.delay[0]) == 7

    def test_empty_graph(self):
        nxg = nx.MultiDiGraph()
        g = from_networkx(nxg)
        assert g.n == 0 and g.m == 0
