"""Unit and property tests for the addressable heap."""

import heapq

import pytest
from hypothesis import given, strategies as st

from repro._util.heap import AddressableHeap


def test_push_pop_orders_by_key():
    h = AddressableHeap(10)
    for item, key in [(3, 7), (1, 2), (4, 9), (0, 1)]:
        h.push(item, key)
    assert [h.pop() for _ in range(4)] == [(0, 1), (1, 2), (3, 7), (4, 9)]


def test_pop_empty_raises():
    h = AddressableHeap(1)
    with pytest.raises(IndexError):
        h.pop()


def test_duplicate_push_raises():
    h = AddressableHeap(2)
    h.push(0, 5)
    with pytest.raises(ValueError):
        h.push(0, 6)


def test_contains_and_len():
    h = AddressableHeap(4)
    assert not h and len(h) == 0
    h.push(2, 1)
    assert 2 in h and 3 not in h and len(h) == 1
    h.pop()
    assert 2 not in h and not h


def test_decrease_key_moves_item_up():
    h = AddressableHeap(5)
    h.push(0, 10)
    h.push(1, 20)
    assert h.push_or_decrease(1, 5)
    assert h.pop() == (1, 5)


def test_push_or_decrease_ignores_larger_key():
    h = AddressableHeap(5)
    h.push(0, 10)
    assert not h.push_or_decrease(0, 15)
    assert h.key_of(0) == 10


def test_push_or_decrease_inserts_missing():
    h = AddressableHeap(5)
    assert h.push_or_decrease(3, 4)
    assert h.key_of(3) == 4


def test_key_of_missing_raises():
    h = AddressableHeap(2)
    with pytest.raises(KeyError):
        h.key_of(0)


def test_tuple_keys_lexicographic():
    h = AddressableHeap(3)
    h.push(0, (1, 5))
    h.push(1, (1, 2))
    h.push(2, (0, 99))
    assert [h.pop()[0] for _ in range(3)] == [2, 1, 0]


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=200))
def test_heapsort_matches_stdlib(keys):
    """Pushing distinct items and popping all must yield sorted keys."""
    h = AddressableHeap(len(keys))
    for i, k in enumerate(keys):
        h.push(i, k)
    popped = [h.pop()[1] for _ in range(len(keys))]
    assert popped == sorted(keys)


@given(
    st.lists(
        st.tuples(st.integers(0, 49), st.integers(-100, 100)),
        min_size=1,
        max_size=300,
    )
)
def test_mixed_ops_match_reference(ops):
    """push_or_decrease + pop interleaving agrees with a lazy heapq model."""
    h = AddressableHeap(50)
    model: dict[int, int] = {}
    for item, key in ops:
        if item in model:
            if key < model[item]:
                model[item] = key
            h.push_or_decrease(item, key)
        else:
            model[item] = key
            h.push_or_decrease(item, key)
    # Drain both and compare multisets of (key) orderings.
    expected = sorted(model.values())
    got = []
    while h:
        item, key = h.pop()
        assert model.pop(item) == key
        got.append(key)
    assert got == expected


def test_heapq_parity_large_random():
    import random

    rnd = random.Random(42)
    n = 2000
    keys = [rnd.randint(0, 10**6) for _ in range(n)]
    h = AddressableHeap(n)
    ref = []
    for i, k in enumerate(keys):
        h.push(i, k)
        heapq.heappush(ref, k)
    for _ in range(n):
        assert h.pop()[1] == heapq.heappop(ref)
