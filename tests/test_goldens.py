"""Golden regression tests: pinned exact outputs on fixed instances.

These freeze observable behaviour — solution costs, delays, paths, and
experiment-table schemas — on specific seeds. A refactor that changes any
of them must consciously update the goldens (the failure message says so),
which is the point: silent behavioural drift is the enemy of a
reproduction repository.
"""

import numpy as np
import pytest

from repro.core import solve_krsp
from repro.eval.experiments import figure1_instance, figure2_instance
from repro.graph import anticorrelated_weights, from_edges, gnp_digraph

UPDATE_HINT = (
    "golden mismatch — if the change is intentional, update tests/test_goldens.py"
)


@pytest.fixture(autouse=True)
def _pin_deterministic_lp_backend(monkeypatch):
    """Goldens were recorded on the scipy LP backend; warm-started highspy
    may return a different (equally optimal, certificate-verified) routing,
    so pin the deterministic backend for exact-output comparisons."""
    from repro.lp import engine as lp_engine

    monkeypatch.setenv(lp_engine.BACKEND_ENV, "scipy")
    lp_engine.reset_engine()
    yield
    lp_engine.reset_engine()


class TestSolverGoldens:
    def test_er_seed1_minsum(self):
        g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=1), rng=2)
        sol = solve_krsp(g, 0, 9, 2, 40, phase1="minsum")
        assert (sol.cost, sol.delay) == (51, 34), UPDATE_HINT
        # Determinism of the precise routing:
        again = solve_krsp(g, 0, 9, 2, 40, phase1="minsum")
        assert again.paths == sol.paths, UPDATE_HINT

    def test_er_seed3_providers_differ(self):
        """Seed 3 pins a case where the two providers land on different
        (both bound-respecting) solutions — a behavioural fingerprint."""
        g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=3), rng=4)
        by_minsum = solve_krsp(g, 0, 9, 2, 40, phase1="minsum")
        by_lp = solve_krsp(g, 0, 9, 2, 40)
        assert (by_minsum.cost, by_minsum.delay) == (45, 35), UPDATE_HINT
        assert (by_lp.cost, by_lp.delay) == (44, 19), UPDATE_HINT

    def test_tradeoff_square(self):
        g, ids = from_edges(
            [
                ("s", "a", 1, 9),
                ("a", "t", 1, 9),
                ("s", "b", 5, 1),
                ("b", "t", 5, 1),
            ]
        )
        sol = solve_krsp(g, ids["s"], ids["t"], 1, 5, phase1="minsum")
        assert sol.paths == [[2, 3]], UPDATE_HINT
        assert (sol.cost, sol.delay, sol.iterations) == (10, 2, 1), UPDATE_HINT


class TestFigureGoldens:
    def test_figure1_numbers(self):
        for D in (4, 8):
            g, ids = figure1_instance(D, c_opt=10)
            sol = solve_krsp(g, ids["s"], ids["t"], 2, D, phase1="minsum")
            assert (sol.cost, sol.delay) == (10, D), UPDATE_HINT

    def test_figure2_shape(self):
        g, ids, path = figure2_instance()
        assert g.n == 5 and g.m == 7 and path == [0, 1, 2, 3], UPDATE_HINT
        assert g.cost_of(path) == 6 and g.delay_of(path) == 5, UPDATE_HINT


class TestWorkloadGoldens:
    def test_er_anticorrelated_stream(self):
        from repro.eval.workloads import er_anticorrelated

        insts = list(er_anticorrelated(n=10, n_instances=4, seed=5))
        pinned = [(inst.seed, inst.delay_bound) for inst in insts]
        assert pinned == [(1726691309, 76)], UPDATE_HINT
