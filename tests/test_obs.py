"""Tests for the telemetry layer (:mod:`repro.obs`).

Covers the primitives (spans, counters, events, sessions), the report and
validation pipeline behind ``repro trace``, the solver's counter
determinism contract (same seed + instance ⇒ identical counters), and the
Lemma-12 audit invariant: the ``cancellation.iterations`` counter, the
``cancel.iteration`` event trail, and ``KRSPSolution.iterations`` must
all agree.
"""

from __future__ import annotations

import itertools
import json
import time

import pytest

from repro import obs
from repro._util.timer import Timer
from repro.cli import main as cli_main
from repro.core.krsp import solve_krsp
from repro.eval.experiments import figure1_instance
from repro.graph.io import instance_to_dict
from repro.obs.report import (
    Trace,
    load_trace,
    phase_breakdown,
    render_report,
    report_json,
    validate_file,
    validate_trace,
)
from repro.oracle.fuzzer import instance_stream


def solve_under_session(g, s, t, k, bound, **kw):
    """Solve once inside a fresh session; return (solution, telemetry)."""
    with obs.session(label="test") as tel:
        sol = solve_krsp(g, s, t, k, bound, **kw)
    return sol, tel


@pytest.fixture
def fig1():
    """The Figure-1 gadget as (graph, s, t, k, D)."""
    g, ids = figure1_instance(6, 10)
    return g, ids["s"], ids["t"], 2, 6


class TestPrimitives:
    def test_disabled_records_nothing(self):
        assert not obs.enabled()
        obs.inc("x")
        obs.add("x", 5)
        obs.gauge("g", 1.0)
        obs.emit("e", a=1)
        with obs.span("dead"):
            pass
        assert obs.snapshot() == {}
        assert obs.current() is None

    def test_session_collects_and_isolates(self):
        with obs.session(label="outer") as tel:
            assert obs.enabled()
            obs.inc("a")
            obs.add("a", 2)
            obs.gauge("g", 3.5)
            obs.emit("k", x=1)
        assert not obs.enabled()
        assert tel.counters == {"a": 3}
        assert tel.gauges == {"g": 3.5}
        assert [e["kind"] for e in tel.events] == ["k"]
        assert tel.wall_seconds > 0.0

    def test_add_zero_is_a_noop(self):
        with obs.session() as tel:
            obs.add("a", 0)
        assert tel.counters == {}

    def test_nested_sessions_both_see_records(self):
        with obs.session(label="outer") as outer:
            obs.inc("before")
            with obs.session(label="inner") as inner:
                obs.inc("during")
            obs.inc("after")
        assert outer.counters == {"before": 1, "during": 1, "after": 1}
        assert inner.counters == {"during": 1}

    def test_span_nesting_and_parent_links(self):
        with obs.session() as tel:
            with obs.span("root"):
                with obs.span("child"):
                    pass
            with obs.span("root2"):
                pass
        by_name = {s.name: s for s in tel.spans}
        assert set(by_name) == {"root", "child", "root2"}
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["root"].parent_id is None
        assert by_name["root2"].parent_id is None
        # Monotonic open order: root before child before root2.
        assert by_name["root"].seq < by_name["child"].seq < by_name["root2"].seq

    def test_span_decorator_preserves_metadata(self):
        @obs.span("test.fn")
        def fn(x):
            """Docstring survives."""
            return x + 1

        assert fn.__name__ == "fn"
        assert fn.__doc__ == "Docstring survives."
        with obs.session() as tel:
            assert fn(1) == 2
            assert fn(2) == 3
        assert [s.name for s in tel.spans] == ["test.fn", "test.fn"]

    def test_span_closes_on_exception(self):
        with obs.session() as tel:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("x")
        assert [s.name for s in tel.spans] == ["boom"]
        assert obs.current_span_id() is None

    def test_events_accessor_filters_by_kind(self):
        with obs.session() as tel:
            obs.emit("a", v=1)
            obs.emit("b", v=2)
            obs.emit("a", v=3)
            assert [e["v"] for e in obs.events("a")] == [1, 3]
            assert len(obs.events()) == 3
        assert len(tel.events) == 3

    def test_event_payload_coercion(self):
        from fractions import Fraction

        with obs.session() as tel:
            obs.emit("k", frac=Fraction(1, 3), ok=True, none=None)
        (ev,) = tel.events
        assert ev["frac"] == "1/3" and ev["ok"] is True and ev["none"] is None
        # Coerced payloads must stay JSON-serializable.
        json.dumps(tel.trace_lines())


class TestTimerShim:
    def test_total_counts_open_nested_sections(self):
        # Regression: re-entering a section used to make total() report 0.0
        # until the outermost close; open sections now contribute elapsed
        # time immediately.
        t = Timer()
        with t.section("outer"):
            time.sleep(0.002)
            assert t.total("outer") > 0.0
            with t.section("outer"):
                time.sleep(0.002)
                assert t.total("outer") > 0.0
        # Closed: both entries accumulated.
        assert t.count("outer") == 2
        assert t.total("outer") >= 0.004

    def test_sections_become_spans_under_session(self):
        with obs.session() as tel:
            t = Timer(span_prefix="unit")
            with t.section("work"):
                pass
        assert [s.name for s in tel.spans] == ["unit.work"]


class TestSolverTelemetry:
    def test_lemma12_audit_counter_equals_event_trail(self, fig1):
        g, s, t, k, bound = fig1
        sol, tel = solve_under_session(g, s, t, k, bound, phase1="minsum")
        cancel_events = [e for e in tel.events if e["kind"] == "cancel.iteration"]
        assert tel.counters["cancellation.iterations"] == len(cancel_events)
        assert sol.iterations == len(cancel_events)
        assert len(cancel_events) >= 1  # minsum start is delay-infeasible
        for i, ev in enumerate(cancel_events, 1):
            assert ev["iteration"] == i
            assert ev["cycle_type"] in ("TYPE0", "TYPE1", "TYPE2")
            assert ev["delay_bound"] == bound

    def test_solution_counters_attached_under_session(self, fig1):
        g, s, t, k, bound = fig1
        sol, tel = solve_under_session(g, s, t, k, bound, phase1="minsum")
        assert sol.counters["krsp.solves"] == 1
        assert sol.counters["cancellation.iterations"] == sol.iterations
        # Solve-level counters are a subset of what the outer session saw.
        for name, value in sol.counters.items():
            assert tel.counters[name] == value

    def test_no_counters_without_session(self, fig1):
        g, s, t, k, bound = fig1
        sol = solve_krsp(g, s, t, k, bound, phase1="minsum")
        assert sol.counters == {}
        assert sol.timings  # phase timings stay available regardless

    @pytest.mark.parametrize("substrate", ["er", "grid", "layered"])
    def test_counters_deterministic_across_runs(self, substrate):
        inst = next(instance_stream(7, substrates=[substrate]))
        runs = []
        for _ in range(2):
            try:
                _, tel = solve_under_session(
                    inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
                )
            except Exception:
                pytest.skip(f"substrate {substrate} produced an unsolvable seed")
            runs.append(tel.counters)
        assert runs[0] == runs[1]
        assert runs[0]  # nonempty: the solver actually recorded work


class TestTraceFileAndReport:
    def test_trace_round_trip_and_validation(self, fig1, tmp_path):
        g, s, t, k, bound = fig1
        path = tmp_path / "trace.jsonl"
        with obs.session(trace_path=path, label="round-trip"):
            solve_krsp(g, s, t, k, bound, phase1="minsum")
        trace = load_trace(path)
        assert validate_trace(trace) == []
        assert validate_file(path) == []
        assert trace.header["label"] == "round-trip"
        assert trace.header["schema"] == obs.TRACE_SCHEMA == 2
        assert trace.counters["cancellation.iterations"] >= 1
        assert trace.summary["spans"] == len(trace.spans)
        # Schema 2: the histograms line round-trips, and each span-name
        # histogram's count equals the trace's span count for that name.
        assert trace.histograms["krsp.solve"]["count"] == 1
        span_names = [s["name"] for s in trace.spans]
        for name, h in trace.histograms.items():
            if name in span_names:
                assert h["count"] == span_names.count(name)

    def test_histogram_span_count_cross_check(self, fig1, tmp_path):
        g, s, t, k, bound = fig1
        path = tmp_path / "trace.jsonl"
        with obs.session(trace_path=path):
            solve_krsp(g, s, t, k, bound, phase1="minsum")
        lines = [json.loads(raw) for raw in path.read_text().splitlines()]
        for line in lines:
            if line["type"] == "histograms":
                name = next(iter(line["values"]))
                line["values"][name]["counts"][0] += 1
                line["values"][name]["count"] += 1
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        problems = validate_file(path)
        assert any("histogram" in p for p in problems)

    def test_report_renders_all_sections(self, fig1):
        g, s, t, k, bound = fig1
        _, tel = solve_under_session(g, s, t, k, bound, phase1="minsum")
        trace = Trace.from_session(tel)
        text = render_report(trace)
        assert "phase-time breakdown" in text
        assert "hot spans" in text
        assert "cancellation.iterations" in text
        assert "cancellation iterations" in text
        phases = dict((name, cnt) for name, _, cnt, _ in phase_breakdown(trace))
        assert phases.get("krsp.cancel") == 1
        d = report_json(trace)
        assert d["schema"] == obs.TRACE_SCHEMA
        assert d["counters"] == trace.counters
        assert len(d["cancel_iterations"]) == trace.counters["cancellation.iterations"]
        json.dumps(d)  # machine-readable means JSON-serializable

    def test_validation_catches_corruption(self, fig1, tmp_path):
        g, s, t, k, bound = fig1
        path = tmp_path / "trace.jsonl"
        with obs.session(trace_path=path):
            solve_krsp(g, s, t, k, bound, phase1="minsum")
        lines = [json.loads(raw) for raw in path.read_text().splitlines()]
        # Break the Lemma-12 cross-check: claim one more iteration.
        for line in lines:
            if line["type"] == "counters":
                line["values"]["cancellation.iterations"] += 1
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        problems = validate_file(path)
        assert any("cancellation.iterations" in p for p in problems)

    def test_validation_catches_bad_header_and_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "summary", "spans": 0, "events": 0}\n')
        assert any("header" in p for p in validate_file(path))
        path.write_text("not json\n")
        assert validate_file(path)


class TestCli:
    def test_solve_trace_then_trace_command(self, fig1, tmp_path, capsys):
        g, s, t, k, bound = fig1
        inst_path = tmp_path / "inst.json"
        inst_path.write_text(json.dumps(instance_to_dict(g, s, t, k, bound)))
        trace_path = tmp_path / "out.jsonl"
        assert cli_main(["solve", str(inst_path), "--phase1", "minsum",
                         "--trace", str(trace_path)]) == 0
        assert trace_path.exists()
        capsys.readouterr()
        assert cli_main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "phase-time breakdown" in out and "counters:" in out
        assert cli_main(["trace", str(trace_path), "--validate"]) == 0
        assert "valid:" in capsys.readouterr().out
        assert cli_main(["trace", str(trace_path), "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["counters"]["krsp.solves"] == 1

    def test_trace_command_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{nope\n")
        assert cli_main(["trace", str(bad)]) == 2
        assert cli_main(["trace", str(tmp_path / "missing.jsonl")]) == 2
        good_header_only = tmp_path / "partial.jsonl"
        good_header_only.write_text(json.dumps({"type": "header", "schema": 99}) + "\n")
        assert cli_main(["trace", str(good_header_only), "--validate"]) == 1


class TestOverheadGuard:
    def test_disabled_primitives_are_cheap(self, fig1):
        """Tracing disabled must cost <= 5% of a representative solve.

        Strategy: measure the per-call cost of each disabled obs primitive
        directly, multiply by a *generous* per-solve call budget (far above
        what the Figure-1 solve actually performs), and require the total
        to stay under 5% of the measured solve wall time. This bounds the
        real overhead without the flakiness of differencing two noisy
        end-to-end timings.
        """
        g, s, t, k, bound = fig1
        assert not obs.enabled()

        # Median-of-5 solve time, tracing disabled.
        times = []
        for _ in range(5):
            start = time.perf_counter()
            solve_krsp(g, s, t, k, bound, phase1="minsum")
            times.append(time.perf_counter() - start)
        solve_seconds = sorted(times)[2]

        reps = 20_000
        start = time.perf_counter()
        for _ in itertools.repeat(None, reps):
            obs.add("x", 3)
        add_cost = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in itertools.repeat(None, reps):
            with obs.span("x"):
                pass
        span_cost = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in itertools.repeat(None, reps):
            obs.emit("x")
        emit_cost = (time.perf_counter() - start) / reps

        # A Figure-1 solve performs well under these call counts (counter
        # flushes happen once per algorithm call, not per inner-loop step).
        budget = 200 * add_cost + 100 * span_cost + 50 * emit_cost
        assert budget < 0.05 * solve_seconds, (
            f"disabled-telemetry budget {budget:.6f}s exceeds 5% of "
            f"solve time {solve_seconds:.6f}s"
        )

    def test_enabled_primitives_with_metrics_endpoint_are_cheap(self, fig1):
        """Telemetry *enabled* — histograms recording, a live `/metrics`
        publisher attached — must also cost <= 5% of a representative
        solve (the PR 7 acceptance bar). Same per-primitive strategy as
        the disabled guard: the publisher runs on its own thread, so the
        solve-path cost is just the recording primitives."""
        from repro.obs.server import MetricsPublisher, MetricsServer

        g, s, t, k, bound = fig1
        times = []
        for _ in range(5):
            start = time.perf_counter()
            solve_krsp(g, s, t, k, bound, phase1="minsum")
            times.append(time.perf_counter() - start)
        solve_seconds = sorted(times)[2]

        srv = MetricsServer(0)
        try:
            with obs.session(label="overhead") as tel:
                publisher = MetricsPublisher(srv.url, tel, "overhead",
                                             interval=0.05)
                reps = 5_000
                start = time.perf_counter()
                for _ in itertools.repeat(None, reps):
                    obs.add("x", 3)
                add_cost = (time.perf_counter() - start) / reps
                start = time.perf_counter()
                for _ in itertools.repeat(None, reps):
                    with obs.span("x"):
                        pass
                span_cost = (time.perf_counter() - start) / reps
                start = time.perf_counter()
                for _ in itertools.repeat(None, reps):
                    obs.observe("x.latency", 1e-4)
                observe_cost = (time.perf_counter() - start) / reps
                publisher.close()
            assert tel.histograms["x"].count >= reps  # spans fed histograms
        finally:
            srv.close()

        # Same generous per-solve call budget as the disabled guard; spans
        # now include the histogram observe on close, and krsp.solve adds
        # one explicit observe per solve.
        budget = 200 * add_cost + 100 * span_cost + 101 * observe_cost
        assert budget < 0.05 * solve_seconds, (
            f"enabled-telemetry budget {budget:.6f}s exceeds 5% of "
            f"solve time {solve_seconds:.6f}s"
        )
