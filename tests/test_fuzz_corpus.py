"""Regression corpus replay: every committed instance, through the oracle.

The corpus (``tests/corpus/*.json``) holds the seed sentinels (Figure-1
gadget plus one instance per substrate) and any minimized crashers the fuzz
driver has persisted. Replaying all of them through the differential runner
on every test run means a once-fixed bug cannot silently regress — the
exact failing instance is part of the suite forever.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.oracle import load_corpus, run_differential
from repro.oracle.corpus import entry_from_dict, entry_to_dict

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = list(load_corpus(CORPUS_DIR))


class TestCorpusContents:
    def test_seed_sentinels_present(self):
        assert len(ENTRIES) >= 8, "seed corpus is incomplete"
        substrates = {e.instance.substrate for e in ENTRIES}
        # One sentinel per substrate, including the paper's Figure-1 gadget.
        assert {
            "chains", "er", "figure1", "grid", "layered", "ring",
            "scale_free", "waxman",
        } <= substrates

    def test_meta_is_well_formed(self):
        for entry in ENTRIES:
            assert entry.meta["origin"] in ("seed", "fuzz"), entry.name
            assert "note" in entry.meta, entry.name
            # Seeds never broke anything; crashers must say what they broke.
            if entry.meta["origin"] == "fuzz":
                assert entry.meta["failure_kind"], entry.name
                assert entry.meta["failure_solver"], entry.name

    def test_roundtrip_is_lossless(self):
        for entry in ENTRIES:
            again = entry_from_dict(entry_to_dict(entry))
            assert again.instance == entry.instance, entry.name
            assert again.meta == entry.meta, entry.name


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_corpus_entry_replays_clean(entry):
    """The differential runner must stay clean on every corpus instance."""
    report = run_differential(entry.instance, milp_time_limit=30.0)
    assert report.ok, (
        f"corpus regression on {entry.name}: "
        + "; ".join(f"{f.kind}/{f.solver}: {f.message}" for f in report.failures)
    )


class TestFuzzCli:
    def test_smoke_run_is_clean_and_reports(self, tmp_path, capsys):
        report_path = tmp_path / "fuzz.json"
        rc = main([
            "fuzz", "--budget", "3", "--seed", "0", "--max-instances", "6",
            "--corpus", str(CORPUS_DIR), "--no-shrink",
            "--report", str(report_path),
        ])
        assert rc == 0, capsys.readouterr().err
        data = json.loads(report_path.read_text())
        assert data["clean"] is True
        assert data["seed"] == 0
        # Corpus replay alone already exceeds the instance floor.
        assert data["instances_checked"] >= data["corpus_replayed"] >= 8
        assert set(data) >= {
            "schema", "elapsed_seconds", "per_substrate", "per_transform",
            "failures", "base_instances", "transformed_instances",
        }

    def test_unknown_substrate_is_an_argument_error(self, capsys):
        rc = main(["fuzz", "--budget", "1", "--substrates", "nonesuch"])
        assert rc == 2
        assert "nonesuch" in capsys.readouterr().err
