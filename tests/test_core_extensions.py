"""Tests for the extension solvers: kBCP and the Section 1.2 special cases."""

import pytest

from repro.core import (
    LengthBoundedStatus,
    length_bounded_paths,
    min_max_disjoint_paths,
    solve_kbcp,
)
from repro.errors import InfeasibleInstanceError
from repro.graph import from_edges, gnp_digraph, anticorrelated_weights, parallel_chains
from repro.graph.validate import check_disjoint_paths
from repro.lp.milp import solve_krsp_milp


class TestKbcp:
    def _instance(self, seed):
        g = anticorrelated_weights(gnp_digraph(10, 0.45, rng=seed), rng=seed + 1)
        return g, 0, 9

    def test_feasible_instances_within_factors(self):
        checked = 0
        for seed in range(15):
            g, s, t = self._instance(seed)
            exact = solve_krsp_milp(g, s, t, 2, 40)
            if exact is None:
                continue
            # Budgets set exactly at an achievable point: (C, D) = optimum.
            res = solve_kbcp(g, s, t, 2, cost_bound=exact.cost, delay_bound=40)
            assert res.delay <= 40
            assert res.cost <= 2 * exact.cost
            assert res.cost_within_factor <= 2.0 + 1e-9
            check_disjoint_paths(g, res.paths, s, t, k=2)
            checked += 1
        assert checked >= 5

    def test_certified_infeasibility_on_tiny_cost_budget(self):
        g, ids = from_edges(
            [("s", "t", 10, 1), ("s", "t", 10, 1)]
        )
        with pytest.raises(InfeasibleInstanceError, match="kRSP relaxation"):
            solve_kbcp(g, ids["s"], ids["t"], 2, cost_bound=5, delay_bound=10)

    def test_delay_infeasibility_propagates(self):
        g, s, t = parallel_chains(2, 2)
        import numpy as np

        g = g.with_weights(np.ones(g.m, np.int64), np.full(g.m, 9, np.int64))
        with pytest.raises(InfeasibleInstanceError):
            solve_kbcp(g, s, t, 2, cost_bound=100, delay_bound=10)

    def test_eps_variant_factors(self):
        for seed in range(8):
            g, s, t = self._instance(seed)
            exact = solve_krsp_milp(g, s, t, 2, 40)
            if exact is None:
                continue
            res = solve_kbcp(
                g, s, t, 2, cost_bound=exact.cost, delay_bound=40, eps=0.5
            )
            assert res.delay <= 1.5 * 40
            assert res.cost <= 2.5 * exact.cost

    def test_negative_budget_rejected(self):
        g, ids = from_edges([("s", "t", 1, 1)])
        with pytest.raises(InfeasibleInstanceError):
            solve_kbcp(g, ids["s"], ids["t"], 1, cost_bound=-1, delay_bound=5)


class TestMinMax:
    def test_exact_on_symmetric_chains(self):
        g, s, t = parallel_chains(2, 1)
        import numpy as np

        g = g.with_weights(np.array([1, 1]), np.array([4, 6]))
        res = min_max_disjoint_paths(g, s, t, 2)
        assert res.max_delay == 6 and res.factor == 2
        assert res.lower_bound == 5  # ceil(10/2)

    def test_factor_two_bound_holds(self):
        # Brute-force OPT_minmax on small instances; min-sum witness must be
        # within factor 2 for k=2.
        import itertools

        import networkx as nx

        from repro.graph import to_networkx

        for seed in range(12):
            g = anticorrelated_weights(gnp_digraph(8, 0.45, rng=seed), rng=seed + 1)
            s, t = 0, 7
            try:
                res = min_max_disjoint_paths(g, s, t, 2)
            except InfeasibleInstanceError:
                continue
            # Enumerate all disjoint pairs to find OPT_minmax.
            nxg = to_networkx(g)
            paths = []
            for np_ in nx.all_simple_paths(nxg, s, t):
                opts = [
                    [d["eid"] for d in nxg[u][v].values()]
                    for u, v in zip(np_, np_[1:])
                ]
                for combo in itertools.product(*opts):
                    paths.append(list(combo))
            best = None
            for a, b in itertools.combinations(paths, 2):
                if set(a) & set(b):
                    continue
                mx = max(g.delay_of(a), g.delay_of(b))
                best = mx if best is None else min(best, mx)
            if best is None:
                continue
            assert res.max_delay <= 2 * best
            assert res.lower_bound <= best

    def test_infeasible(self):
        g, s, t = parallel_chains(2, 2)
        with pytest.raises(InfeasibleInstanceError):
            min_max_disjoint_paths(g, s, t, 3)


class TestLengthBounded:
    def _weighted_chains(self):
        g, s, t = parallel_chains(2, 1)
        import numpy as np

        return g.with_weights(np.array([0, 0]), np.array([4, 6])), s, t

    def test_solved(self):
        g, s, t = self._weighted_chains()
        res = length_bounded_paths(g, s, t, 2, per_path_bound=6)
        assert res.status is LengthBoundedStatus.SOLVED
        assert res.max_delay == 6

    def test_infeasible_certified(self):
        g, s, t = self._weighted_chains()
        res = length_bounded_paths(g, s, t, 2, per_path_bound=4)
        # total = 10 > 2*4: certified infeasible.
        assert res.status is LengthBoundedStatus.INFEASIBLE
        assert res.paths is None

    def test_undecided_band(self):
        g, s, t = self._weighted_chains()
        res = length_bounded_paths(g, s, t, 2, per_path_bound=5)
        # total = 10 == 2*5 but max = 6 > 5: the relaxation cannot tell.
        assert res.status is LengthBoundedStatus.UNDECIDED
        assert res.paths is not None
