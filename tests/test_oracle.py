"""Unit tests for the oracle's generation layers: substrates, mutations,
the instance stream, and the metamorphic transforms.

The differential/shrinker layers get their own module
(``test_oracle_differential.py``); here we pin the properties generation
must have for the whole subsystem to be trustworthy — determinism,
provenance, coverage, and that every metamorphic relation both *passes* on
honest oracle answers and *fires* on planted violations.
"""

import itertools
from types import SimpleNamespace

import numpy as np
import pytest

from repro.lp.milp import solve_krsp_milp
from repro.oracle import (
    MUTATIONS,
    SUBSTRATES,
    TRANSFORMS,
    OracleInstance,
    apply_transform,
    instance_stream,
    make_base_instance,
    oracle_instance_from_dict,
    oracle_instance_to_dict,
)


def first_feasible(substrate="er", start_seed=0):
    for seed in itertools.count(start_seed):
        inst = make_base_instance(substrate, seed)
        if inst is None:
            continue
        exact = solve_krsp_milp(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
        )
        if exact is not None:
            return inst, exact


class TestSubstrates:
    @pytest.mark.parametrize("name", sorted(SUBSTRATES))
    def test_builders_are_deterministic(self, name):
        a = make_base_instance(name, 7)
        b = make_base_instance(name, 7)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.graph == b.graph
            assert (a.s, a.t, a.k, a.delay_bound) == (b.s, b.t, b.k, b.delay_bound)
            assert a.substrate == name and a.label.startswith(name)

    def test_figure1_always_asks_for_two_paths(self):
        for seed in range(10):
            inst = make_base_instance("figure1", seed)
            if inst is not None:
                assert inst.k == 2

    def test_boundary_draws_occur(self):
        """With boundary_fraction=1 every draw sits at the feasibility
        edge — tight-but-feasible or strictly infeasible, never in-band."""
        from repro.flow.mincost import min_cost_k_flow

        seen_infeasible = False
        for seed in range(20):
            inst = make_base_instance("er", seed, boundary_fraction=1.0)
            if inst is None:
                continue
            flow = min_cost_k_flow(
                inst.graph, inst.s, inst.t, inst.k, weight=inst.graph.delay
            )
            if flow is None or inst.delay_bound < flow.weight:
                seen_infeasible = True
            else:
                assert inst.delay_bound == flow.weight
        assert seen_infeasible, "boundary mode never produced an infeasible draw"


class TestMutations:
    def base(self):
        inst, _ = first_feasible("grid")
        return inst

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutations_preserve_provenance_and_terminals(self, name):
        inst = self.base()
        out = MUTATIONS[name](inst, np.random.default_rng(3))
        assert isinstance(out, OracleInstance)
        assert out.substrate == inst.substrate
        # tighten may be a no-op (already minimal); the rest must tag.
        if out is not inst:
            assert out.mutation == name
            assert f"+{name}" in out.label
        assert 0 <= out.s < out.graph.n and 0 <= out.t < out.graph.n

    def test_tighten_reaches_the_exact_minimum(self):
        from repro.flow.mincost import min_cost_k_flow

        inst = self.base()
        out = MUTATIONS["tighten"](inst, np.random.default_rng(0))
        flow = min_cost_k_flow(out.graph, out.s, out.t, out.k, weight=out.graph.delay)
        assert flow is not None
        assert out.delay_bound == flow.weight

    def test_graft_keeps_original_edges(self):
        inst = self.base()
        out = MUTATIONS["graft_figure1"](inst, np.random.default_rng(5))
        m = inst.graph.m
        assert out.graph.m > m
        assert np.array_equal(out.graph.cost[:m], inst.graph.cost)
        assert np.array_equal(out.graph.delay[:m], inst.graph.delay)


class TestInstanceStream:
    def test_stream_is_a_pure_function_of_the_seed(self):
        a = list(itertools.islice(instance_stream(11), 10))
        b = list(itertools.islice(instance_stream(11), 10))
        for x, y in zip(a, b):
            assert x.graph == y.graph and x.label == y.label
            assert x.delay_bound == y.delay_bound

    def test_stream_covers_substrates_and_mutations(self):
        batch = list(itertools.islice(instance_stream(0), 40))
        substrates = {i.substrate for i in batch}
        mutations = {i.mutation for i in batch if i.mutation}
        assert len(substrates) >= 3
        assert mutations, "no mutated instance in 40 draws"

    def test_substrate_subset_is_honored(self):
        batch = list(itertools.islice(instance_stream(0, substrates=["grid"]), 5))
        assert {i.substrate for i in batch} == {"grid"}
        with pytest.raises(KeyError):
            next(instance_stream(0, substrates=["nonesuch"]))


class TestInstanceSerialization:
    def test_roundtrip(self):
        inst, _ = first_feasible()
        again = oracle_instance_from_dict(oracle_instance_to_dict(inst))
        assert again == inst

    def test_plain_io_payload_loads(self):
        """A bare repro.graph.io instance dict (no provenance) loads too."""
        inst, _ = first_feasible()
        data = oracle_instance_to_dict(inst)
        for key in ("label", "substrate", "seed", "mutation", "transform"):
            del data[key]
        again = oracle_instance_from_dict(data)
        assert again.graph == inst.graph and again.substrate == ""


class TestMetamorphicRelations:
    """Every transform must (a) produce an instance whose true optimum
    satisfies the claimed relation, and (b) flag a planted violation."""

    @pytest.fixture(scope="class")
    def base(self):
        return first_feasible("grid")

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_relation_holds_on_honest_answers(self, name, base):
        inst, exact = base
        meta = apply_transform(name, inst, 123, exact)
        if meta is None:
            pytest.skip(f"{name} not applicable here")
        ti = meta.instance
        assert ti.transform == name and f"~{name}" in ti.label
        trans_exact = solve_krsp_milp(ti.graph, ti.s, ti.t, ti.k, ti.delay_bound)
        assert meta.check(exact, trans_exact) == []

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_relation_fires_on_planted_violation(self, name, base):
        inst, exact = base
        meta = apply_transform(name, inst, 123, exact)
        if meta is None:
            pytest.skip(f"{name} not applicable here")
        # A wildly wrong "optimum" must break every relation: equalities
        # and the scaling law reject any deviation; the inequalities each
        # have one violating direction (cheaper for tighten_budget, dearer
        # for everything else).
        if name == "tighten_budget":
            if exact.cost == 0:
                pytest.skip("zero-cost optimum cannot be undercut")
            forged_cost = 0
        else:
            forged_cost = exact.cost * 1000 + 17
        forged = SimpleNamespace(paths=[], cost=forged_cost, delay=0)
        issues = meta.check(exact, forged)
        assert issues and all(name in msg for msg in issues)

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_transforms_are_deterministic(self, name, base):
        inst, exact = base
        a = apply_transform(name, inst, 9, exact)
        b = apply_transform(name, inst, 9, exact)
        if a is None:
            assert b is None
            return
        assert a.instance.graph == b.instance.graph
        assert a.instance.delay_bound == b.instance.delay_bound

    def test_feasibility_flip_is_flagged(self, base):
        inst, exact = base
        meta = apply_transform("scale_cost", inst, 5, exact)
        issues = meta.check(exact, None)
        assert issues and "infeasible" in issues[0]

    def test_swap_needs_a_feasible_base(self, base):
        inst, _ = base
        assert apply_transform("swap_cost_delay", inst, 5, None) is None
