"""End-to-end property suite: the paper's guarantees as hypothesis laws.

Each property generates random instances and checks a theorem-level
invariant of the full pipeline — the highest-leverage regression net the
repository has.

Hypothesis settings come from the profiles registered in ``conftest.py``
(select with ``HYPOTHESIS_PROFILE=ci``); tests only override
``max_examples`` where the oracle makes examples expensive.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import solve_krsp
from repro.errors import InfeasibleInstanceError, ReproError
from repro.graph import (
    anticorrelated_weights,
    gnp_digraph,
    grid_digraph,
    uniform_weights,
)
from repro.graph.validate import check_disjoint_paths
from repro.lp.milp import solve_krsp_milp

def _random_instance(seed: int, n: int = 10, model: str = "anti"):
    g = gnp_digraph(n, 0.4, rng=seed)
    if model == "anti":
        g = anticorrelated_weights(g, rng=seed + 1)
    else:
        g = uniform_weights(g, rng=seed + 1)
    return g


@given(st.integers(0, 10**6), st.integers(1, 3), st.integers(10, 80))
def test_lemma3_bifactor_1_2(seed, k, D):
    """Whenever the instance is feasible the solver returns disjoint paths
    with delay <= D and cost <= 2 * C_OPT (Lemma 3 via the exact oracle)."""
    g = _random_instance(seed)
    s, t = 0, g.n - 1
    exact = solve_krsp_milp(g, s, t, k, D)
    try:
        sol = solve_krsp(g, s, t, k, D, phase1="minsum", opt_cost=getattr(exact, "cost", None))
    except InfeasibleInstanceError:
        assert exact is None
        return
    assert exact is not None
    check_disjoint_paths(g, sol.paths, s, t, k=k)
    assert sol.delay <= D
    assert sol.cost <= 2 * exact.cost


@given(st.integers(0, 10**6), st.integers(10, 60))
def test_feasibility_trichotomy(seed, D):
    """solve_krsp either solves or raises InfeasibleInstanceError, in exact
    agreement with the MILP oracle — never a third outcome."""
    g = _random_instance(seed, model="uniform")
    s, t = 0, g.n - 1
    exact = solve_krsp_milp(g, s, t, 2, D)
    try:
        sol = solve_krsp(g, s, t, 2, D)
        assert exact is not None
        assert sol.delay_feasible
    except InfeasibleInstanceError:
        assert exact is None


@given(st.integers(0, 10**6))
def test_lower_bound_is_certified(seed):
    """The reported cost lower bound never exceeds the true optimum."""
    g = _random_instance(seed)
    s, t = 0, g.n - 1
    exact = solve_krsp_milp(g, s, t, 2, 45)
    if exact is None:
        return
    sol = solve_krsp(g, s, t, 2, 45)
    assert sol.cost_lower_bound is not None
    assert float(sol.cost_lower_bound) <= exact.cost + 1e-9
    assert sol.cost >= float(sol.cost_lower_bound) - 1e-9


@settings(max_examples=10)
@given(st.integers(0, 10**6), st.sampled_from([1.0, 0.5, 0.25]))
def test_theorem4_scaled_bifactor(seed, eps):
    """Scaled mode: delay <= (1+eps) * D and cost <= (2+eps) * C_OPT."""
    g = anticorrelated_weights(gnp_digraph(11, 0.4, rng=seed), total=120, rng=seed + 1)
    s, t = 0, g.n - 1
    D = 160
    exact = solve_krsp_milp(g, s, t, 2, D)
    if exact is None or exact.cost == 0:
        return
    sol = solve_krsp(g, s, t, 2, D, phase1="minsum", eps=eps)
    assert sol.delay <= (1 + eps) * D + 1e-9
    assert sol.cost <= (2 + eps) * exact.cost + 1e-9
    check_disjoint_paths(g, sol.paths, s, t, k=2)


@settings(max_examples=8)
@given(st.integers(0, 10**6))
def test_paper_literal_finder_agrees_on_guarantee(seed):
    """The Algorithm-3-literal finder keeps the same end-to-end guarantee."""
    g = _random_instance(seed, n=8)
    s, t = 0, g.n - 1
    exact = solve_krsp_milp(g, s, t, 2, 35)
    if exact is None or exact.cost == 0:
        return
    try:
        sol = solve_krsp(g, s, t, 2, 35, phase1="minsum", finder="paper_literal")
    except ReproError:
        # The literal finder has no soft/anti-trap machinery; on rare
        # instances it stalls and the guards fire — an accepted fidelity
        # limitation, recorded rather than hidden.
        return
    assert sol.delay <= 35
    assert sol.cost <= 2 * exact.cost


@given(st.integers(0, 10**6))
def test_solution_is_deterministic(seed):
    """Same instance, same settings -> identical paths (full determinism)."""
    g = _random_instance(seed)
    s, t = 0, g.n - 1
    try:
        a = solve_krsp(g, s, t, 2, 45)
        b = solve_krsp(g, s, t, 2, 45)
    except InfeasibleInstanceError:
        return
    assert a.paths == b.paths
    assert a.cost == b.cost and a.delay == b.delay


@settings(max_examples=10)
@given(st.integers(2, 4), st.integers(3, 5))
def test_grid_interior_terminals_all_k(rows, cols):
    """Structured family: interior-terminal grids solve for every feasible
    k and respect the bound; infeasible k raises."""
    g, _, _ = grid_digraph(rows + 1, cols + 1)
    g = anticorrelated_weights(g, rng=rows * 31 + cols)
    s = cols + 2  # (1, 1)
    t = rows * (cols + 1) + cols - 1
    if s >= g.n or t >= g.n or s == t:
        return
    for k in (1, 2):
        D = 25 * k
        exact = solve_krsp_milp(g, s, t, k, D)
        try:
            sol = solve_krsp(g, s, t, k, D, phase1="lagrangian")
        except InfeasibleInstanceError:
            assert exact is None
            continue
        assert exact is not None
        assert sol.delay <= D and sol.cost <= 2 * exact.cost
