"""Tests for KRSPInstance / PathSet types."""

import pytest

from repro.core import KRSPInstance, PathSet
from repro.errors import GraphError
from repro.graph import from_edges, parallel_chains


@pytest.fixture
def simple():
    g, s, t = parallel_chains(2, 2)
    import numpy as np

    g = g.with_weights(
        np.array([1, 2, 3, 4], dtype=np.int64), np.array([5, 6, 7, 8], dtype=np.int64)
    )
    return g, s, t


class TestInstance:
    def test_valid(self, simple):
        g, s, t = simple
        inst = KRSPInstance(g, s, t, 2, 100)
        assert inst.k == 2

    def test_rejects_equal_terminals(self, simple):
        g, s, t = simple
        with pytest.raises(GraphError, match="distinct"):
            KRSPInstance(g, s, s, 1, 10)

    def test_rejects_bad_k(self, simple):
        g, s, t = simple
        with pytest.raises(GraphError):
            KRSPInstance(g, s, t, 0, 10)

    def test_rejects_negative_bound(self, simple):
        g, s, t = simple
        with pytest.raises(GraphError):
            KRSPInstance(g, s, t, 1, -1)

    def test_rejects_out_of_range_terminal(self, simple):
        g, s, t = simple
        with pytest.raises(GraphError):
            KRSPInstance(g, s, 99, 1, 10)

    def test_rejects_negative_weights(self):
        g, ids = from_edges([("s", "t", -1, 0)])
        with pytest.raises(GraphError):
            KRSPInstance(g, ids["s"], ids["t"], 1, 10)


class TestPathSet:
    def test_totals(self, simple):
        g, s, t = simple
        inst = KRSPInstance(g, s, t, 2, 100)
        ps = inst.path_set([[0, 1], [2, 3]])
        assert ps.cost == 10 and ps.delay == 26
        assert sorted(ps.edge_ids) == [0, 1, 2, 3]

    def test_validation_rejects_overlap(self, simple):
        g, s, t = simple
        inst = KRSPInstance(g, s, t, 2, 100)
        with pytest.raises(GraphError):
            inst.path_set([[0, 1], [0, 1]])

    def test_wrong_k_rejected(self, simple):
        g, s, t = simple
        inst = KRSPInstance(g, s, t, 2, 100)
        with pytest.raises(GraphError):
            inst.path_set([[0, 1]])

    def test_feasibility_and_bifactor(self, simple):
        g, s, t = simple
        inst = KRSPInstance(g, s, t, 2, 26)
        ps = inst.path_set([[0, 1], [2, 3]])
        assert ps.is_delay_feasible(26)
        assert not ps.is_delay_feasible(25)
        alpha, beta = ps.bifactor(26, 5)
        assert alpha == 1.0 and beta == 2.0

    def test_bifactor_degenerate(self, simple):
        g, s, t = simple
        inst = KRSPInstance(g, s, t, 2, 100)
        ps = inst.path_set([[0, 1], [2, 3]])
        a, b = ps.bifactor(0, 0)
        assert a == float("inf") and b == float("inf")

    def test_frozen(self, simple):
        g, s, t = simple
        inst = KRSPInstance(g, s, t, 2, 100)
        ps = inst.path_set([[0, 1], [2, 3]])
        with pytest.raises(Exception):
            ps.cost = 0
