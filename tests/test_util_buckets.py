"""Tests for Dial's bucket queue and the bucketed Dijkstra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._util.buckets import BucketQueue, dial_dijkstra
from repro.errors import GraphError
from repro.graph import gnp_digraph, uniform_weights
from repro.paths import dijkstra


class TestBucketQueue:
    def test_pops_in_key_order(self):
        q = BucketQueue(5, 10)
        for item, key in [(0, 7), (1, 2), (2, 9), (3, 2)]:
            q.push_or_decrease(item, key)
        popped = [q.pop() for _ in range(4)]
        assert [k for _, k in popped] == [2, 2, 7, 9]

    def test_decrease_key(self):
        q = BucketQueue(3, 10)
        q.push_or_decrease(0, 8)
        assert q.push_or_decrease(0, 3)
        item, key = q.pop()
        assert (item, key) == (0, 3)
        assert not q  # stale entry at 8 must not resurface
        with pytest.raises(IndexError):
            q.pop()

    def test_increase_ignored(self):
        q = BucketQueue(3, 10)
        q.push_or_decrease(0, 3)
        assert not q.push_or_decrease(0, 8)
        assert q.pop() == (0, 3)

    def test_monotonicity_enforced(self):
        q = BucketQueue(3, 10)
        q.push_or_decrease(0, 5)
        q.pop()
        with pytest.raises(GraphError):
            q.push_or_decrease(1, 3)

    def test_key_range_validated(self):
        q = BucketQueue(2, 5)
        with pytest.raises(GraphError):
            q.push_or_decrease(0, 6)
        with pytest.raises(GraphError):
            BucketQueue(2, -1)

    def test_len(self):
        q = BucketQueue(4, 4)
        assert len(q) == 0
        q.push_or_decrease(1, 1)
        q.push_or_decrease(2, 2)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    @given(
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 50)),
            min_size=1,
            max_size=100,
        )
    )
    def test_matches_model_when_monotone(self, ops):
        """Insert everything then drain: output sorted, min keys per item."""
        q = BucketQueue(20, 50)
        model: dict[int, int] = {}
        for item, key in ops:
            q.push_or_decrease(item, key)
            if item not in model or key < model[item]:
                model[item] = key
        drained = []
        while q:
            drained.append(q.pop())
        assert sorted(k for _, k in drained) == [k for _, k in drained]
        assert dict(drained) == model


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 100_000))
def test_dial_matches_heap_dijkstra(seed):
    g = uniform_weights(gnp_digraph(12, 0.3, rng=seed), (0, 9), (1, 9), rng=seed + 1)
    d1, p1 = dijkstra(g, 0)
    d2, p2 = dial_dijkstra(g, 0)
    assert np.array_equal(d1, d2)


def test_dial_negative_weight_rejected():
    g = uniform_weights(gnp_digraph(5, 0.5, rng=1), rng=2)
    with pytest.raises(GraphError):
        dial_dijkstra(g, 0, weight=-g.cost)


def test_dial_falls_back_on_huge_keys():
    g = uniform_weights(gnp_digraph(8, 0.5, rng=1), rng=2)
    big = g.cost * 10_000_000
    d1, _ = dial_dijkstra(g, 0, weight=big)
    d2, _ = dijkstra(g, 0, weight=big)
    assert np.array_equal(d1, d2)


def test_dial_early_exit_target():
    g = uniform_weights(gnp_digraph(10, 0.4, rng=3), rng=4)
    d_full, _ = dijkstra(g, 0)
    d_cut, _ = dial_dijkstra(g, 0, target=5)
    assert d_cut[5] == d_full[5]
