"""Substrate-level property laws, hypothesis-driven.

The complement of the end-to-end suite: laws that individual substrates
must satisfy in isolation, discovered inputs free of charge.

Hypothesis settings come from the profiles registered in ``conftest.py``
(select with ``HYPOTHESIS_PROFILE=ci``); this suite raises ``max_examples``
because substrate laws are cheap relative to the end-to-end oracle calls.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_residual, scale_instance, KRSPInstance
from repro.flow import (
    decompose_flow,
    min_cost_k_flow,
    preflow_max_flow,
    suurballe_k_paths,
)
from repro.graph import gnp_digraph, anticorrelated_weights, uniform_weights
from repro.paths import dijkstra, minimum_mean_cycle, rsp_exact, yen_k_shortest_paths
from repro.paths.dijkstra import INF

@settings(max_examples=30)
@given(st.integers(0, 10**6))
def test_suurballe_monotone_in_k(seed):
    """Total min-sum cost is nondecreasing and superadditive-ish in k:
    cost(k) <= cost(k+1), and each increment is at least the previous
    single-path cost increment's floor (convexity of min-cost flow)."""
    g = uniform_weights(gnp_digraph(10, 0.45, rng=seed), rng=seed + 1)
    costs = []
    for k in (1, 2, 3):
        paths = suurballe_k_paths(g, 0, 9, k)
        if paths is None:
            break
        costs.append(sum(g.cost_of(p) for p in paths))
    for a, b in zip(costs, costs[1:]):
        assert a <= b
    if len(costs) == 3:
        # Convexity: marginal cost of the 3rd path >= marginal of the 2nd.
        assert costs[2] - costs[1] >= costs[1] - costs[0]


@settings(max_examples=30)
@given(st.integers(0, 10**6))
def test_residual_involution(seed):
    """Building a residual of a residual with the same edge set restores
    the original weights (negation is an involution)."""
    g = uniform_weights(gnp_digraph(8, 0.4, rng=seed), rng=seed + 1)
    paths = suurballe_k_paths(g, 0, 7, 1)
    if paths is None:
        return
    sol = sorted(e for p in paths for e in p)
    res1 = build_residual(g, sol)
    res2 = build_residual(res1.graph, sol)
    # Twice-reversed edges match the original exactly.
    assert np.array_equal(np.abs(res2.graph.cost), np.abs(g.cost))
    assert np.array_equal(res2.graph.cost[sol], g.cost[sol])
    assert np.array_equal(res2.graph.tail[sol], g.tail[sol])


@settings(max_examples=30)
@given(st.integers(0, 10**6), st.integers(1, 40))
def test_rsp_monotone_in_budget(seed, D):
    """A larger delay budget never costs more."""
    g = anticorrelated_weights(gnp_digraph(8, 0.4, rng=seed), rng=seed + 1)
    a = rsp_exact(g, 0, 7, D)
    b = rsp_exact(g, 0, 7, D + 5)
    if a is not None:
        assert b is not None and b[0] <= a[0]


@settings(max_examples=30)
@given(st.integers(0, 10**6))
def test_mmc_lower_bounds_any_cycle(seed):
    """The minimum mean is a true lower bound: no negative cycle under
    w - mu* exists (checked via Bellman-Ford)."""
    from repro.paths import find_negative_cycle

    rng = np.random.default_rng(seed)
    g = gnp_digraph(8, 0.35, rng=int(rng.integers(1 << 30)))
    w = rng.integers(-4, 8, size=g.m).astype(np.int64)
    g = g.with_weights(w, np.zeros(g.m, np.int64))
    hit = minimum_mean_cycle(g, weight=w)
    if hit is None:
        return
    mean, _ = hit
    w2 = w * mean.denominator - mean.numerator
    assert find_negative_cycle(g, weight=w2) is None


@settings(max_examples=30)
@given(st.integers(0, 10**6))
def test_yen_prefix_stability(seed):
    """The first K' of K shortest paths equal the K'-query exactly."""
    g = uniform_weights(gnp_digraph(9, 0.4, rng=seed), rng=seed + 1)
    big = yen_k_shortest_paths(g, 0, 8, 6)
    small = yen_k_shortest_paths(g, 0, 8, 3)
    assert big[: len(small)] == small


@settings(max_examples=30)
@given(st.integers(0, 10**6), st.sampled_from([0.5, 0.25]))
def test_scaling_preserves_feasibility_exactly(seed, eps):
    """Every original-feasible path set stays feasible after scaling
    (floors only shrink) — the direction Theorem 4's proof needs."""
    from repro.lp.milp import solve_krsp_milp

    g = anticorrelated_weights(gnp_digraph(9, 0.45, rng=seed), total=80, rng=seed + 1)
    D = 120
    exact = solve_krsp_milp(g, 0, 8, 2, D)
    if exact is None:
        return
    inst = KRSPInstance(g, 0, 8, 2, D)
    scaled = scale_instance(inst, eps, eps, max(1, exact.cost))
    flat = [e for p in exact.paths for e in p]
    assert scaled.instance.graph.delay_of(flat) <= scaled.instance.delay_bound


@settings(max_examples=30)
@given(st.integers(0, 10**6))
def test_mincost_flow_lower_bounds_any_k_paths(seed):
    """min_cost_k_flow's weight is a true lower bound over every disjoint
    k-path system (checked against Yen-pool assemblies)."""
    g = uniform_weights(gnp_digraph(9, 0.45, rng=seed), rng=seed + 1)
    res = min_cost_k_flow(g, 0, 8, 2)
    if res is None:
        return
    pool = yen_k_shortest_paths(g, 0, 8, 10)
    for i in range(len(pool)):
        for j in range(i + 1, len(pool)):
            if set(pool[i]) & set(pool[j]):
                continue
            total = g.cost_of(pool[i]) + g.cost_of(pool[j])
            assert total >= res.weight
