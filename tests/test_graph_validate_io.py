"""Tests for structural validation helpers and JSON round-tripping."""

import json

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    check_disjoint_paths,
    degree_imbalance,
    from_edges,
    gnp_digraph,
    graph_from_dict,
    graph_to_dict,
    is_cycle,
    is_path,
    is_simple_path,
    load_graph,
    save_graph,
    uniform_weights,
)


@pytest.fixture
def g():
    graph, ids = from_edges(
        [
            ("s", "a", 1, 1),  # 0
            ("a", "t", 1, 1),  # 1
            ("s", "b", 1, 1),  # 2
            ("b", "t", 1, 1),  # 3
            ("a", "b", 1, 1),  # 4
            ("b", "a", 1, 1),  # 5
            ("t", "s", 1, 1),  # 6
        ]
    )
    return graph, ids


class TestIsPath:
    def test_valid_path(self, g):
        graph, ids = g
        assert is_path(graph, [0, 1], ids["s"], ids["t"])
        assert is_simple_path(graph, [0, 1], ids["s"], ids["t"])

    def test_wrong_order(self, g):
        graph, ids = g
        assert not is_path(graph, [1, 0], ids["s"], ids["t"])

    def test_wrong_endpoints(self, g):
        graph, ids = g
        assert not is_path(graph, [0], ids["s"], ids["t"])

    def test_empty_path_only_for_s_eq_t(self, g):
        graph, ids = g
        assert is_path(graph, [], ids["s"], ids["s"])
        assert not is_path(graph, [], ids["s"], ids["t"])

    def test_nonsimple_walk_detected(self, g):
        graph, ids = g
        # s->a->b->a->t revisits a.
        walk = [0, 4, 5, 1]
        assert is_path(graph, walk, ids["s"], ids["t"])
        assert not is_simple_path(graph, walk, ids["s"], ids["t"])

    def test_bad_edge_id(self, g):
        graph, ids = g
        assert not is_path(graph, [99], ids["s"], ids["t"])


class TestCheckDisjoint:
    def test_accepts_disjoint(self, g):
        graph, ids = g
        check_disjoint_paths(graph, [[0, 1], [2, 3]], ids["s"], ids["t"], k=2)

    def test_rejects_shared_edge(self, g):
        graph, ids = g
        with pytest.raises(GraphError, match="share"):
            check_disjoint_paths(graph, [[0, 1], [0, 4, 3]], ids["s"], ids["t"])

    def test_rejects_wrong_count(self, g):
        graph, ids = g
        with pytest.raises(GraphError, match="expected"):
            check_disjoint_paths(graph, [[0, 1]], ids["s"], ids["t"], k=2)

    def test_rejects_non_path(self, g):
        graph, ids = g
        with pytest.raises(GraphError, match="not an s-t path"):
            check_disjoint_paths(graph, [[1, 0]], ids["s"], ids["t"])

    def test_rejects_repeated_edge_within_path(self, g):
        graph, ids = g
        # s->a->b->a->... cannot repeat an edge id; construct explicitly:
        with pytest.raises(GraphError):
            check_disjoint_paths(graph, [[0, 4, 5, 4, 3]], ids["s"], ids["t"])

    def test_parallel_edges_are_distinct(self):
        graph, ids = from_edges([("s", "t", 1, 1), ("s", "t", 2, 2)])
        check_disjoint_paths(graph, [[0], [1]], ids["s"], ids["t"], k=2)


class TestCycle:
    def test_valid_cycle(self, g):
        graph, _ = g
        assert is_cycle(graph, [4, 5])  # a->b->a
        assert is_cycle(graph, [0, 1, 6])  # s->a->t->s

    def test_invalid(self, g):
        graph, _ = g
        assert not is_cycle(graph, [])
        assert not is_cycle(graph, [0, 1])  # open walk
        assert not is_cycle(graph, [0, 3])  # disconnected hops


class TestImbalance:
    def test_flow_imbalance(self, g):
        graph, ids = g
        bal = degree_imbalance(graph, [0, 1, 2, 3])
        assert bal[ids["s"]] == 2 and bal[ids["t"]] == -2
        assert bal[ids["a"]] == 0 and bal[ids["b"]] == 0

    def test_cycle_balanced(self, g):
        graph, _ = g
        assert (degree_imbalance(graph, [4, 5]) == 0).all()

    def test_empty(self, g):
        graph, _ = g
        assert (degree_imbalance(graph, []) == 0).all()


class TestIo:
    def test_round_trip_memory(self):
        g = uniform_weights(gnp_digraph(10, 0.4, rng=0), rng=1)
        assert graph_from_dict(graph_to_dict(g)) == g

    def test_round_trip_file(self, tmp_path):
        g = uniform_weights(gnp_digraph(8, 0.5, rng=2), rng=3)
        path = tmp_path / "g.json"
        save_graph(g, path)
        assert load_graph(path) == g

    def test_json_is_plain(self, tmp_path):
        g = uniform_weights(gnp_digraph(4, 0.5, rng=2), rng=3)
        path = tmp_path / "g.json"
        save_graph(g, path)
        data = json.loads(path.read_text())
        assert data["schema"] == 1 and isinstance(data["cost"], list)

    def test_bad_schema_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"schema": 99})

    def test_big_integers_survive(self):
        graph, _ = from_edges([("a", "b", 2**62, 2**61)])
        assert graph_from_dict(graph_to_dict(graph)) == graph
