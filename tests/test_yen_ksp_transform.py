"""Tests for Yen's KSP, the KSP-filtering baseline, and node splitting."""

import itertools

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import ksp_filtering_baseline
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graph import (
    from_edges,
    gnp_digraph,
    anticorrelated_weights,
    parallel_chains,
    split_vertices,
    solve_krsp_vertex_disjoint,
    to_networkx,
    uniform_weights,
)
from repro.graph.validate import check_disjoint_paths, is_simple_path
from repro.lp.milp import solve_krsp_milp
from repro.paths import yen_k_shortest_paths


class TestYen:
    def test_first_path_is_shortest(self):
        g, ids = from_edges(
            [("s", "a", 1, 0), ("a", "t", 1, 0), ("s", "t", 5, 0)]
        )
        paths = yen_k_shortest_paths(g, ids["s"], ids["t"], 2)
        assert paths[0] == [0, 1] and paths[1] == [2]

    def test_nondecreasing_weights(self):
        g = uniform_weights(gnp_digraph(10, 0.4, rng=3), rng=4)
        paths = yen_k_shortest_paths(g, 0, 9, 8)
        weights = [g.cost_of(p) for p in paths]
        assert weights == sorted(weights)

    def test_all_loopless_and_distinct(self):
        g = uniform_weights(gnp_digraph(10, 0.4, rng=3), rng=4)
        paths = yen_k_shortest_paths(g, 0, 9, 10)
        seen = set()
        for p in paths:
            assert is_simple_path(g, p, 0, 9)
            assert tuple(p) not in seen
            seen.add(tuple(p))

    def test_exhausts_small_graph(self):
        g, ids = from_edges([("s", "t", 1, 0), ("s", "t", 2, 0)])
        paths = yen_k_shortest_paths(g, ids["s"], ids["t"], 10)
        assert len(paths) == 2

    def test_unreachable(self):
        g, ids = from_edges([("s", "a", 1, 0)], nodes=["s", "a", "t"])
        assert yen_k_shortest_paths(g, ids["s"], ids["t"], 3) == []

    def test_s_eq_t(self):
        g, ids = from_edges([("s", "t", 1, 0)])
        assert yen_k_shortest_paths(g, ids["s"], ids["s"], 2) == [[]]

    def test_bad_k(self):
        g, ids = from_edges([("s", "t", 1, 0)])
        with pytest.raises(GraphError):
            yen_k_shortest_paths(g, ids["s"], ids["t"], 0)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 50_000))
    def test_matches_networkx_enumeration(self, seed):
        g = uniform_weights(gnp_digraph(8, 0.4, rng=seed), (1, 9), (1, 9), rng=seed + 1)
        K = 6
        got = yen_k_shortest_paths(g, 0, 7, K)
        # networkx's shortest_simple_paths rejects multigraphs; gnp graphs
        # are simple, so collapse the container type.
        nxg = nx.DiGraph(to_networkx(g))
        try:
            expected = list(
                itertools.islice(
                    nx.shortest_simple_paths(nxg, 0, 7, weight="cost"), K
                )
            )
        except nx.NetworkXNoPath:
            assert got == []
            return
        assert len(got) == min(K, len(expected)) or len(got) <= K
        # Weight sequences must match (path identities may differ on ties).
        def node_path_weight(np_):
            return sum(nxg[u][v]["cost"] for u, v in zip(np_, np_[1:]))

        got_w = [g.cost_of(p) for p in got]
        exp_w = [node_path_weight(p) for p in expected]
        assert got_w == exp_w[: len(got_w)]


class TestKspFiltering:
    def test_solves_tradeoff(self):
        g, ids = from_edges(
            [
                ("s", "a", 1, 9),
                ("a", "t", 1, 9),
                ("s", "b", 5, 1),
                ("b", "t", 5, 1),
            ]
        )
        res = ksp_filtering_baseline(g, ids["s"], ids["t"], 2, 30)
        assert res.meets_delay_bound
        check_disjoint_paths(g, res.paths, ids["s"], ids["t"], k=2)

    def test_fails_when_budget_unreachable(self):
        g, ids = from_edges(
            [("s", "t", 1, 9), ("s", "t", 1, 9)]
        )
        with pytest.raises(InfeasibleInstanceError):
            ksp_filtering_baseline(g, ids["s"], ids["t"], 2, 10)

    def test_pool_too_small(self):
        g, s, t = parallel_chains(2, 2)
        with pytest.raises(InfeasibleInstanceError):
            ksp_filtering_baseline(g, s, t, 3, 100)

    def test_random_instances_feasible_when_it_answers(self):
        for seed in range(10):
            g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=seed), rng=seed + 1)
            exact = solve_krsp_milp(g, 0, 9, 2, 40)
            if exact is None:
                continue
            try:
                res = ksp_filtering_baseline(g, 0, 9, 2, 40)
            except InfeasibleInstanceError:
                continue  # heuristic miss — legitimate
            assert res.delay <= 40
            assert res.cost >= exact.cost  # never beats the optimum
            check_disjoint_paths(g, res.paths, 0, 9, k=2)


class TestSplitVertices:
    def test_structure(self):
        g, ids = from_edges(
            [("s", "a", 1, 2), ("a", "t", 3, 4), ("s", "t", 5, 6)]
        )
        split = split_vertices(g, ids["s"], ids["t"])
        # One gate (vertex a) + three original edges.
        assert split.graph.m == 1 + 3
        gates = np.nonzero(split.orig_eid < 0)[0]
        assert len(gates) == 1
        assert split.graph.cost[gates[0]] == 0

    def test_rejects_bad_terminals(self):
        g, ids = from_edges([("s", "t", 1, 1)])
        with pytest.raises(GraphError):
            split_vertices(g, ids["s"], ids["s"])

    def test_vertex_disjointness_enforced(self):
        # Two edge-disjoint routes share the middle vertex m; the
        # vertex-disjoint solver must refuse k=2.
        g, ids = from_edges(
            [
                ("s", "m", 1, 1),
                ("m", "t", 1, 1),
                ("s", "m", 1, 1),
                ("m", "t", 1, 1),
            ]
        )
        # Edge-disjoint version is fine:
        from repro.core import solve_krsp

        assert solve_krsp(g, ids["s"], ids["t"], 2, 100).cost == 4
        # Vertex-disjoint is impossible:
        with pytest.raises(InfeasibleInstanceError):
            solve_krsp_vertex_disjoint(g, ids["s"], ids["t"], 2, 100)

    def test_projected_paths_vertex_disjoint(self):
        for seed in range(8):
            g = anticorrelated_weights(gnp_digraph(10, 0.5, rng=seed), rng=seed + 1)
            try:
                sol = solve_krsp_vertex_disjoint(g, 0, 9, 2, 60)
            except InfeasibleInstanceError:
                continue
            assert sol.delay <= 60
            check_disjoint_paths(g, sol.paths, 0, 9, k=2)
            # Internal vertices are pairwise disjoint.
            interiors = []
            for p in sol.paths:
                verts = [int(g.head[e]) for e in p[:-1]]
                interiors.append(set(verts))
            assert not (interiors[0] & interiors[1])

    def test_weights_preserved_through_projection(self):
        g, ids = from_edges([("s", "a", 2, 3), ("a", "t", 4, 5)])
        split = split_vertices(g, ids["s"], ids["t"])
        from repro.core import solve_krsp

        sol = solve_krsp(split.graph, split.s, split.t, 1, 100)
        projected = split.project_path(sol.paths[0])
        assert g.cost_of(projected) == sol.cost
        assert g.delay_of(projected) == sol.delay
