"""Churn-differential suite for the online warm-start layer (PR 6).

Locks down :mod:`repro.online` end to end:

* property traces — seeded churn sequences replayed through
  :func:`repro.online.resolve`; every intermediate solution must pass the
  independent audit, and warm and scratch results must mutually
  2-approximate (both are certified ``<= 2 * OPT``);
* the fallback taxonomy — each warm-start precondition breach on a
  hand-built instance must fall back cold with the right counted reason;
* persistence — ``state`` and delta files round-trip, tampered input
  degrades to :class:`InputError`, and a reloaded session resumes *warm*;
* crash safety — a journaled resolve replays through
  :func:`repro.robustness.resume_krsp` to the identical solution;
* pinned corpus — three committed churn traces under
  ``tests/corpus/churn/`` with frozen mode/fallback/cost expectations;
* telemetry — a resolve under a trace session emits schema-valid spans,
  ``online.*`` counters, and the resolve event.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core import solve_krsp
from repro.core.verify import verify_solution
from repro.errors import GraphError, InfeasibleInstanceError, InputError
from repro.graph import anticorrelated_weights, from_edges, gnp_digraph
from repro.online import (
    FALLBACK_BUDGET_TIGHTENED,
    FALLBACK_DEMAND_MOVED,
    FALLBACK_NO_PRIOR,
    FALLBACK_REMOVED_SOLUTION_EDGE,
    FALLBACK_WARM_STALLED,
    DemandMove,
    EdgeAddition,
    EdgeRemoval,
    EdgeReweight,
    InstanceDelta,
    apply_delta,
    delta_from_dict,
    delta_to_dict,
    graphs_equivalent,
    invert_delta,
    load_state,
    resolve,
    save_state,
    start_online,
)
from repro.oracle import (
    generate_churn_trace,
    load_trace,
    make_base_instance,
    replay_instances,
    run_online_differential,
    save_trace,
)
from repro.oracle.churn import _feasible

CHURN_CORPUS = __file__.rsplit("/", 1)[0] + "/corpus/churn"


def _two_route():
    """Two disjoint s-t routes with slack: warm-start friendly."""
    g, ids = from_edges(
        [
            ("s", "a", 1, 4),
            ("a", "t", 1, 8),
            ("a", "t", 6, 1),
            ("s", "b", 3, 2),
            ("b", "t", 3, 2),
        ]
    )
    return g, ids


def _feasible_base(substrate: str, seeds) -> "OracleInstance":
    for seed in seeds:
        inst = make_base_instance(substrate, seed)
        if inst is not None and _feasible(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
        ):
            return inst
    raise RuntimeError(f"no feasible {substrate} base in {seeds}")


# ---------------------------------------------------------------------------
# property traces: verify every step, warm/cold mutual guarantee
# ---------------------------------------------------------------------------


class TestChurnProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 20))
    def test_trace_replay_verifies_every_step(self, seed, steps):
        inst = _feasible_base("er", range(seed % 50, seed % 50 + 40))
        trace = generate_churn_trace(inst, steps, rng=seed)
        state = start_online(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
        )
        for _step, delta, g, s, t, k, bound in replay_instances(trace):
            sol = resolve(state, delta)
            # The session instance is array-identical to scratch patching.
            sg = state.instance.graph
            assert np.array_equal(sg.tail, g.tail)
            assert np.array_equal(sg.cost, g.cost)
            assert np.array_equal(sg.delay, g.delay)
            # Independent audit of the returned paths.
            report = verify_solution(g, s, t, k, bound, sol.paths)
            assert report.clean, report.issues
            # Warm/cold mutual guarantee: both are within 2x of OPT, so
            # each is within 2x of the other.
            scratch = solve_krsp(g, s, t, k, bound)
            assert sol.cost <= 2 * scratch.cost
            assert scratch.cost <= 2 * sol.cost
            if sol.cost_lower_bound is not None:
                assert sol.cost >= sol.cost_lower_bound

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_invert_apply_identity(self, seed):
        rng = np.random.default_rng(seed)
        inst = _feasible_base("grid", range(seed % 40, seed % 40 + 30))
        trace = generate_churn_trace(inst, 4, rng=int(rng.integers(1 << 31)))
        g, s, t, k, bound = (
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
        )
        for delta in trace.deltas:
            g1, s1, t1, k1, d1 = apply_delta(g, s, t, k, bound, delta)
            inv = invert_delta(g, s, t, k, bound, delta)
            g2, s2, t2, k2, d2 = apply_delta(g1, s1, t1, k1, d1, inv)
            assert graphs_equivalent(g2, g)
            assert (s2, t2, k2, d2) == (s, t, k, bound)
            g, s, t, k, bound = g1, s1, t1, k1, d1

    def test_online_differential_clean_on_seeded_traces(self):
        for seed in (11, 12):
            inst = _feasible_base("er", range(seed, seed + 40))
            trace = generate_churn_trace(inst, 3, rng=seed)
            diff = run_online_differential(trace)
            assert diff.ok, [f.message for f in diff.failures]
            assert diff.steps_checked == len(trace.deltas)

    def test_generator_is_deterministic(self):
        inst = _feasible_base("er", range(3, 40))
        a = generate_churn_trace(inst, 6, rng=99)
        b = generate_churn_trace(inst, 6, rng=99)
        assert a == b
        assert generate_churn_trace(inst, 6, rng=100) != a


# ---------------------------------------------------------------------------
# fallback taxonomy on hand-built instances
# ---------------------------------------------------------------------------


class TestFallbackTaxonomy:
    def _session(self, delay_bound=16, k=2):
        g, ids = _two_route()
        return start_online(g, ids["s"], ids["t"], k, delay_bound)

    def test_pure_reweight_stays_warm(self):
        state = self._session()
        with obs.session():
            sol = resolve(
                state, InstanceDelta(ops=(EdgeReweight(1, cost=1, delay=13),))
            )
            snap = obs.snapshot()
        assert state.last.mode == "warm" and state.last.fallback is None
        assert state.last.cycles_cancelled >= 1
        assert snap["online.warm"] == 1
        assert snap["online.cycles_cancelled"] >= 1
        assert sol.delay <= 16

    def test_demand_move_falls_back(self):
        state = self._session()
        g = state.instance.graph
        # Retarget t onto vertex "a" (the head of edge 0).
        new_t = int(g.head[0])
        with obs.session():
            resolve(state, InstanceDelta(ops=(DemandMove(t=new_t, k=1),)))
            snap = obs.snapshot()
        assert state.last.mode == "cold"
        assert state.last.fallback == FALLBACK_DEMAND_MOVED
        assert snap[f"online.fallback.{FALLBACK_DEMAND_MOVED}"] == 1

    def test_noop_demand_move_stays_warm(self):
        state = self._session()
        resolve(state, InstanceDelta(ops=(DemandMove(k=2, delay_bound=16),)))
        assert state.last.mode == "warm"

    def test_removed_solution_edge_falls_back(self):
        state = self._session()
        doomed = state.solution.paths[0][-1]  # a -> t edge carrying flow
        with obs.session():
            resolve(state, InstanceDelta(ops=(EdgeRemoval(doomed),)))
            snap = obs.snapshot()
        assert state.last.fallback == FALLBACK_REMOVED_SOLUTION_EDGE
        assert snap[f"online.fallback.{FALLBACK_REMOVED_SOLUTION_EDGE}"] == 1

    def test_idle_edge_removal_stays_warm(self):
        state = self._session()
        used = {e for p in state.solution.paths for e in p}
        idle = next(e for e in range(state.instance.graph.m) if e not in used)
        before = [list(p) for p in state.solution.paths]
        resolve(state, InstanceDelta(ops=(EdgeRemoval(idle),)))
        assert state.last.mode == "warm"
        # Path edge ids were remapped through the removal's id map.
        remap = [[e - (1 if e > idle else 0) for e in p] for p in before]
        assert [list(p) for p in state.solution.paths] == remap

    def test_budget_tighten_past_delay_falls_back(self):
        state = self._session()
        tight = state.solution.delay - 1
        resolve(state, InstanceDelta(ops=(DemandMove(delay_bound=tight),)))
        assert state.last.fallback == FALLBACK_BUDGET_TIGHTENED
        assert state.solution.delay <= tight

    def test_infeasible_then_recover(self):
        state = self._session()
        # Delay-inflate every edge: min total delay for k=2 exceeds D=16.
        ops = tuple(
            EdgeReweight(e, cost=1, delay=50)
            for e in range(state.instance.graph.m)
        )
        with pytest.raises(InfeasibleInstanceError):
            resolve(state, InstanceDelta(ops=ops))
        assert state.solution is None and state.lower_bound is None
        # The session survives; a recovery delta re-solves cold (no_prior).
        ops = tuple(
            EdgeReweight(e, cost=1, delay=1)
            for e in range(state.instance.graph.m)
        )
        with obs.session():
            sol = resolve(state, InstanceDelta(ops=ops))
            snap = obs.snapshot()
        assert sol.status == "ok"
        assert state.last.fallback == FALLBACK_NO_PRIOR
        assert snap[f"online.fallback.{FALLBACK_NO_PRIOR}"] == 1

    def test_delta_validation_errors(self):
        state = self._session()
        m = state.instance.graph.m
        with pytest.raises(InputError):
            resolve(state, InstanceDelta(ops=(EdgeReweight(m, 1, 1),)))
        with pytest.raises(InputError):
            resolve(state, InstanceDelta(ops=(EdgeRemoval(-1),)))

    def test_negative_and_out_of_range_ops_rejected(self):
        state = self._session()
        n = state.instance.graph.n
        with pytest.raises(InputError):
            resolve(state, InstanceDelta(ops=(EdgeReweight(0, cost=-1, delay=1),)))
        with pytest.raises(InputError):
            resolve(state, InstanceDelta(ops=(EdgeAddition(0, 1, cost=1, delay=-2),)))
        with pytest.raises(InputError):
            resolve(state, InstanceDelta(ops=(EdgeAddition(0, n, cost=1, delay=1),)))

    def test_invalid_demand_poisons_session(self):
        state = self._session()
        s = state.instance.s
        with pytest.raises(GraphError):
            resolve(state, InstanceDelta(ops=(DemandMove(t=s),)))
        # The graph patch landed but the instance is nonsense: the warm
        # machinery must be poisoned, not left pointing at stale paths.
        assert state.last.mode == "cold" and state.last.fallback == "invalid"
        assert state.solution is None and state.engine is None
        # The session recovers through the no-prior cold path.
        g, ids = _two_route()
        sol = resolve(state, InstanceDelta(ops=(DemandMove(t=ids["t"]),)))
        assert sol.status == "ok"
        assert state.last.fallback == FALLBACK_NO_PRIOR

    def test_exhausted_budget_degrades_anytime(self):
        from repro.robustness import SolveBudget

        state = self._session()
        sol = resolve(
            state,
            InstanceDelta(ops=(EdgeReweight(1, cost=1, delay=13),)),
            budget=SolveBudget(deadline_seconds=0.0),
        )
        # Anytime semantics survive the warm path: the spent budget yields
        # the best-so-far solution, not an exception.
        assert sol.status == "budget_exhausted"
        assert state.last.mode == "warm"

    def test_iteration_limit_stalls_warm_then_cold_finishes(self):
        state = self._session()
        with obs.session():
            sol = resolve(
                state,
                InstanceDelta(ops=(EdgeReweight(1, cost=1, delay=13),)),
                max_iterations=0,
            )
            snap = obs.snapshot()
        assert sol.status == "ok"
        assert state.last.mode == "cold"
        assert state.last.fallback == FALLBACK_WARM_STALLED
        assert snap[f"online.fallback.{FALLBACK_WARM_STALLED}"] == 1


# ---------------------------------------------------------------------------
# persistence: delta wire format, state round-trip, warm continuation
# ---------------------------------------------------------------------------


class TestPersistence:
    def test_delta_round_trip_and_validation(self):
        delta = InstanceDelta(
            ops=(
                EdgeReweight(3, cost=7, delay=2),
                EdgeRemoval(0),
                EdgeAddition(1, 2, 5, 5),
                DemandMove(delay_bound=9),
            ),
            label="wire",
        )
        assert delta_from_dict(delta_to_dict(delta)) == delta
        with pytest.raises(InputError):
            delta_from_dict({"schema": "instance-delta/1", "ops": [{"op": "zap"}]})
        with pytest.raises(InputError):
            delta_from_dict(
                {
                    "schema": "instance-delta/1",
                    "ops": [{"op": "reweight", "edge": True, "cost": 1, "delay": 1}],
                }
            )

    def test_delta_wire_rejects_malformed_payloads(self):
        ok = delta_to_dict(InstanceDelta(ops=(EdgeRemoval(0),)))
        for bad in (
            [],  # not an object
            {**ok, "schema": "instance-delta/999"},
            {**ok, "ops": []},
            {**ok, "ops": "remove 0"},
            {**ok, "label": 7},
            {**ok, "ops": ["remove"]},  # op not an object
            {**ok, "ops": [{"op": "demand"}]},  # demand op changes nothing
            {
                **ok,
                "ops": [{"op": "reweight", "edge": 0, "cost": -3, "delay": 1}],
            },
        ):
            with pytest.raises(InputError):
                delta_from_dict(bad)

    def test_load_delta_rejects_junk_files(self, tmp_path):
        from repro.online import load_delta, save_delta

        delta = InstanceDelta(ops=(EdgeReweight(2, cost=4, delay=6),), label="d")
        save_delta(tmp_path / "d.json", delta)
        assert load_delta(tmp_path / "d.json") == delta
        with pytest.raises(InputError):
            load_delta(tmp_path / "missing.json")
        (tmp_path / "junk.json").write_text("{not json")
        with pytest.raises(InputError):
            load_delta(tmp_path / "junk.json")

    def test_state_round_trip_resumes_warm(self, tmp_path):
        g, ids = _two_route()
        state = start_online(g, ids["s"], ids["t"], 2, 16)
        resolve(state, InstanceDelta(ops=(EdgeReweight(1, cost=1, delay=13),)))
        assert state.engine is not None
        path = tmp_path / "state.json"
        save_state(path, state)
        loaded = load_state(path)
        assert loaded.solution.paths == state.solution.paths
        assert loaded.lower_bound == state.lower_bound
        assert loaded.engine is not None  # residual restored
        resolve(loaded, InstanceDelta(ops=(EdgeReweight(0, cost=2, delay=4),)))
        assert loaded.last.mode == "warm"

    def test_tampered_state_rejected(self, tmp_path):
        g, ids = _two_route()
        state = start_online(g, ids["s"], ids["t"], 2, 16)
        path = tmp_path / "state.json"
        save_state(path, state)
        data = json.loads(path.read_text())
        data["solution"]["paths"][0] = data["solution"]["paths"][1]
        path.write_text(json.dumps(data))
        with pytest.raises(InputError):
            load_state(path)

    def test_corrupt_residual_payload_rejected(self, tmp_path):
        g, ids = _two_route()
        state = start_online(g, ids["s"], ids["t"], 2, 16)
        resolve(state, InstanceDelta(ops=(EdgeReweight(1, cost=1, delay=13),)))
        assert state.engine is not None  # residual present in the snapshot
        path = tmp_path / "state.json"
        save_state(path, state)
        base = json.loads(path.read_text())
        corruptions = [
            {"reversed_mask": "|b1:@@@not-base64@@@"},  # undecodable array
            {"reversed_mask": 7},                       # wrong type
            {"graph": None},                            # missing graph payload
        ]
        for patch in corruptions:
            data = json.loads(json.dumps(base))
            data["residual"].update(patch)
            path.write_text(json.dumps(data))
            with pytest.raises(InputError):
                load_state(path)

    def test_trace_file_round_trip(self, tmp_path):
        inst = _feasible_base("er", range(3, 40))
        trace = generate_churn_trace(inst, 4, rng=5)
        save_trace(tmp_path / "t.json", trace)
        assert load_trace(tmp_path / "t.json") == trace
        with pytest.raises(InputError):
            load_trace(tmp_path / "missing.json")


# ---------------------------------------------------------------------------
# crash safety: journaled resolve replays bit-identically
# ---------------------------------------------------------------------------


class TestJournaledResolve:
    def test_journaled_warm_resolve_resumes_identically(self, tmp_path):
        from repro.robustness import resume_krsp

        g, ids = _two_route()
        state = start_online(g, ids["s"], ids["t"], 2, 16)
        journal = tmp_path / "resolve.journal"
        sol = resolve(
            state,
            InstanceDelta(ops=(EdgeReweight(1, cost=1, delay=13),)),
            journal_path=journal,
        )
        assert state.last.mode == "warm"
        resumed = resume_krsp(journal)
        assert resumed.paths == sol.paths
        assert resumed.cost == sol.cost and resumed.delay == sol.delay

    def test_journaled_cold_fallback_resumes_identically(self, tmp_path):
        from repro.robustness import resume_krsp

        g, ids = _two_route()
        state = start_online(g, ids["s"], ids["t"], 2, 16)
        tight = state.solution.delay - 1
        journal = tmp_path / "cold.journal"
        sol = resolve(
            state,
            InstanceDelta(ops=(DemandMove(delay_bound=tight),)),
            journal_path=journal,
        )
        assert state.last.fallback == FALLBACK_BUDGET_TIGHTENED
        resumed = resume_krsp(journal)
        assert resumed.paths == sol.paths
        assert resumed.cost == sol.cost and resumed.delay == sol.delay


# ---------------------------------------------------------------------------
# pinned corpus replay
# ---------------------------------------------------------------------------

# (mode, fallback, cost, delay, status) per delta, frozen at pin time.
PINNED = {
    "er_warm": [
        ("warm", None, 8, 7, "ok"),
        ("warm", None, 8, 7, "ok"),
        ("warm", None, 8, 7, "ok"),
        ("warm", None, 8, 7, "ok"),
        ("warm", None, 30, 7, "ok"),
        ("warm", None, 30, 7, "ok"),
    ],
    "grid_structural": [
        ("warm", None, 106, 93, "ok"),
        ("warm", None, 106, 93, "ok"),
        ("warm", None, 106, 93, "ok"),
        ("cold", "budget_tightened", 122, 92, "ok"),
        ("warm", None, 117, 91, "ok"),
        ("warm", None, 117, 91, "ok"),
    ],
    "mixed_fallback": [
        ("warm", None, 27, 28, "ok"),
        ("warm", None, 27, 28, "ok"),
        ("warm", None, 27, 28, "ok"),
        ("warm", None, 27, 28, "ok"),
        ("cold", "demand_moved", 5, 6, "ok"),
        ("warm", None, 5, 6, "ok"),
        ("warm", None, 5, 6, "ok"),
        ("warm", None, 5, 6, "ok"),
    ],
}


class TestPinnedChurnCorpus:
    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_pinned_trace_replays_to_expectations(self, name):
        trace = load_trace(f"{CHURN_CORPUS}/{name}.json")
        inst = trace.instance
        state = start_online(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
        )
        got = []
        for delta in trace.deltas:
            sol = resolve(state, delta)
            got.append(
                (
                    state.last.mode,
                    state.last.fallback,
                    sol.cost,
                    sol.delay,
                    sol.status,
                )
            )
        assert got == PINNED[name]
        # Every intermediate also passes the independent audit.
        for _step, _d, g, s, t, k, bound in replay_instances(trace):
            pass
        report = verify_solution(g, s, t, k, bound, state.solution.paths)
        assert report.clean, report.issues


# ---------------------------------------------------------------------------
# telemetry: counters and trace schema
# ---------------------------------------------------------------------------


class TestOnlineTelemetry:
    def test_resolve_trace_validates(self, tmp_path):
        from repro.obs.report import load_trace as load_tel
        from repro.obs.report import validate_trace

        g, ids = _two_route()
        trace_path = tmp_path / "online.jsonl"
        state = start_online(g, ids["s"], ids["t"], 2, 16)
        with obs.session(trace_path=trace_path):
            resolve(
                state, InstanceDelta(ops=(EdgeReweight(1, cost=1, delay=13),))
            )
        tel = load_tel(trace_path)
        assert validate_trace(tel) == []
        kinds = {ev.get("kind") for ev in tel.events}
        assert "online.resolve" in kinds
        assert "cancel.iteration" in kinds  # warm cancellation is traced

    def test_delta_applied_counter_counts_ops(self):
        g, ids = _two_route()
        state = start_online(g, ids["s"], ids["t"], 2, 16)
        with obs.session():
            resolve(
                state,
                InstanceDelta(
                    ops=(
                        EdgeReweight(0, cost=1, delay=4),
                        EdgeAddition(0, 1, 9, 9),
                    )
                ),
            )
            snap = obs.snapshot()
        assert snap["online.delta_applied"] == 2
        assert snap["online.ops.reweight"] == 1
        assert snap["online.ops.add"] == 1
        assert snap["online.resolves"] == 1
