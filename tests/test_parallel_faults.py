"""Fault-tolerance tests for the parallel harness (ISSUE satellite 1).

The original ``pool.map`` implementation returned one aggregated result, so
a single crashed worker (``BrokenProcessPool``) aborted the sweep and threw
away every record that had already completed. These tests kill, hang, and
blow up workers mid-sweep and assert the new invariant: **one record per
submitted trial, always**, with completed work preserved.
"""

import json

import pytest

from repro.eval.parallel import run_trials_parallel
from repro.eval.workloads import er_anticorrelated
from repro.oracle.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_plan_from_dict,
    fault_spec_from_dict,
)


@pytest.fixture(scope="module")
def instances():
    insts = list(er_anticorrelated(n=10, n_instances=4, seed=7))
    insts += list(er_anticorrelated(n=10, n_instances=4, seed=11))
    assert len(insts) >= 4
    return insts


class TestFaultSpecs:
    def test_round_trip(self):
        spec = FaultSpec(kind="kill", at="worker", attempts=(1,))
        assert fault_spec_from_dict(spec.to_dict()) == spec
        plan = FaultPlan(by_seed={3: spec})
        assert fault_plan_from_dict(plan.to_dict()).spec_for(3) == spec
        assert fault_plan_from_dict(None).spec_for(3) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor")

    def test_attempt_filter(self):
        spec = FaultSpec(kind="raise", attempts=(1,))
        assert spec.fires("worker", 1)
        assert not spec.fires("worker", 2)

    def test_point_filter_and_fire(self):
        spec = FaultSpec(kind="raise", at="bicameral")
        assert spec.fires("bicameral.attempt1")
        assert not spec.fires("worker")
        with pytest.raises(InjectedFault):
            spec.fire()


class TestWorkerExceptions:
    def test_foreign_exception_becomes_error_record(self, instances):
        # Regression: non-ReproError worker exceptions used to escape
        # pool.map and abort the entire sweep.
        victim = instances[1].seed
        plan = FaultPlan(by_seed={victim: FaultSpec(kind="raise")})
        records = run_trials_parallel(
            instances, ["bicameral"], max_workers=2, fault_plan=plan
        )
        assert len(records) == len(instances)
        by_seed = {r.seed: r for r in records}
        assert by_seed[victim].status == "error"
        assert "InjectedFault" in by_seed[victim].extra["error"]
        assert all(
            r.status == "ok" for r in records if r.seed != victim
        )

    def test_iteration_limit_becomes_error_record(self, instances):
        victim = instances[0].seed
        plan = FaultPlan(by_seed={victim: FaultSpec(kind="iteration_limit")})
        records = run_trials_parallel(
            instances[:2], ["bicameral"], max_workers=2, fault_plan=plan
        )
        by_seed = {r.seed: r for r in records}
        assert by_seed[victim].status == "error"
        assert "IterationLimitError" in by_seed[victim].extra["error"]


class TestWorkerCrash:
    def test_kill_mid_sweep_preserves_completed_records(self, instances, tmp_path):
        # The headline regression: SIGKILL one worker mid-sweep. With one
        # worker and the victim last, every earlier trial has completed
        # when the pool breaks — those records must survive.
        victim = instances[-1].seed
        plan = FaultPlan(by_seed={victim: FaultSpec(kind="kill")})
        jsonl = tmp_path / "records.jsonl"
        records = run_trials_parallel(
            instances, ["bicameral"], max_workers=1,
            fault_plan=plan, jsonl_path=jsonl,
        )
        assert len(records) == len(instances)  # one record per trial
        by_seed = {r.seed: r for r in records}
        assert by_seed[victim].status == "crashed"
        for inst in instances[:-1]:
            assert by_seed[inst.seed].status == "ok"
        # Incremental persistence captured every finalized record.
        lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert len(lines) == len(instances)
        assert {l["seed"] for l in lines} == {i.seed for i in instances}

    def test_transient_kill_recovers_via_respawn(self, instances):
        # attempts=(1,) models a transient crash: the respawned pool's
        # retry succeeds, so the sweep ends with zero lost trials.
        victim = instances[1].seed
        plan = FaultPlan(by_seed={victim: FaultSpec(kind="kill", attempts=(1,))})
        records = run_trials_parallel(
            instances, ["bicameral"], max_workers=2, fault_plan=plan
        )
        assert len(records) == len(instances)
        assert all(r.status == "ok" for r in records)

    def test_deterministic_record_order(self, instances):
        # Records come back in (instance, solver) submission order even
        # when completion order is scrambled by a crash + retry.
        victim = instances[0].seed
        plan = FaultPlan(by_seed={victim: FaultSpec(kind="kill", attempts=(1,))})
        records = run_trials_parallel(
            instances, ["bicameral", "minsum"], max_workers=2, fault_plan=plan
        )
        expected = [(i.seed, s) for i in instances for s in ("bicameral", "minsum")]
        assert [(r.seed, r.solver) for r in records] == expected


class TestTimeouts:
    def test_hung_worker_becomes_timeout_record(self, instances):
        # A sleeping worker trips the harness-side stall guard; everyone
        # else finishes normally.
        victim = instances[1].seed
        plan = FaultPlan(by_seed={victim: FaultSpec(kind="sleep", seconds=5.0)})
        records = run_trials_parallel(
            instances, ["bicameral"], max_workers=2,
            fault_plan=plan, trial_timeout=0.3, stall_grace=0.5,
        )
        assert len(records) == len(instances)
        by_seed = {r.seed: r for r in records}
        assert by_seed[victim].status == "timeout"
        assert all(r.status == "ok" for r in records if r.seed != victim)

    def test_budgeted_bicameral_answers_within_timeout(self, instances):
        # The bicameral solver absorbs the per-trial budget anytime-style:
        # the record is ok (an answer exists) with the solve status noted.
        records = run_trials_parallel(
            instances[:2], ["bicameral"], max_workers=2, trial_timeout=60.0
        )
        assert all(r.status == "ok" for r in records)
        assert all(r.extra.get("solve_status") in ("ok", "degraded",
                                                   "budget_exhausted")
                   for r in records)
