"""Tests for online repair after link failures."""

import numpy as np
import pytest

from repro.core import repair_solution, solve_krsp, verify_solution
from repro.errors import InfeasibleInstanceError
from repro.graph import from_edges, gnp_digraph, anticorrelated_weights
from repro.graph.validate import check_disjoint_paths


def provisioned(seed=2, n=12, k=2, D=60):
    g = anticorrelated_weights(gnp_digraph(n, 0.45, rng=seed), rng=seed + 1)
    sol = solve_krsp(g, 0, n - 1, k, D)
    return g, sol, D


class TestNoFailure:
    def test_untouched_paths_pass_through(self):
        g, sol, D = provisioned()
        rep = repair_solution(g, 0, g.n - 1, 2, D, sol.paths, dead_edges=[])
        assert rep.rerouted == 0 and rep.pinned == 2
        assert rep.paths == sol.paths
        assert rep.cost == sol.cost and rep.delay == sol.delay

    def test_irrelevant_failure_ignored(self):
        g, sol, D = provisioned()
        used = set(e for p in sol.paths for e in p)
        spare = [e for e in range(g.m) if e not in used][:2]
        rep = repair_solution(g, 0, g.n - 1, 2, D, sol.paths, dead_edges=spare)
        assert rep.rerouted == 0


class TestReroute:
    def test_broken_path_replaced(self):
        g, sol, D = provisioned()
        victim = sol.paths[0][0]
        rep = repair_solution(g, 0, g.n - 1, 2, D, sol.paths, dead_edges=[victim])
        assert rep.rerouted == 1 and rep.pinned == 1
        check_disjoint_paths(g, rep.paths, 0, g.n - 1, k=2)
        assert rep.delay <= D
        # The dead edge is not used.
        assert victim not in [e for p in rep.paths for e in p]
        # The repaired set audits clean.
        audit = verify_solution(g, 0, g.n - 1, 2, D, rep.paths)
        assert audit.clean, audit.issues

    def test_all_paths_broken(self):
        g, sol, D = provisioned()
        dead = [p[0] for p in sol.paths]
        rep = repair_solution(g, 0, g.n - 1, 2, D, sol.paths, dead_edges=dead)
        assert rep.rerouted == 2
        check_disjoint_paths(g, rep.paths, 0, g.n - 1, k=2)
        assert rep.delay <= D

    def test_replacement_respects_pinning_disjointness(self):
        g, sol, D = provisioned()
        victim = sol.paths[1][0]
        rep = repair_solution(g, 0, g.n - 1, 2, D, sol.paths, dead_edges=[victim])
        pinned_edges = set(rep.paths[0])
        replacement_edges = set(e for p in rep.paths[1:] for e in p)
        assert not pinned_edges & replacement_edges


class TestRepairInfeasible:
    def test_cut_failure_raises(self):
        # Two fixed routes; killing one bridge with no alternative.
        g, ids = from_edges(
            [("s", "a", 1, 1), ("a", "t", 1, 1), ("s", "b", 1, 1), ("b", "t", 1, 1)]
        )
        sol = solve_krsp(g, ids["s"], ids["t"], 2, 10)
        with pytest.raises(InfeasibleInstanceError, match="repair"):
            repair_solution(
                g, ids["s"], ids["t"], 2, 10, sol.paths, dead_edges=[0]
            )

    def test_budget_too_tight_after_pinning(self):
        # Survivor consumes the whole budget; replacement has none left.
        g, ids = from_edges(
            [
                ("s", "a", 1, 10),
                ("a", "t", 1, 10),
                ("s", "b", 1, 1),
                ("b", "t", 1, 1),
                ("s", "c", 1, 5),
                ("c", "t", 1, 5),
            ]
        )
        sol = solve_krsp(g, ids["s"], ids["t"], 2, 22)
        # Kill the fast pair's first edge; survivor = slow pair (delay 20),
        # leaving budget 2 — the only remaining route needs 10.
        paths = sorted(sol.paths, key=lambda p: g.delay_of(p))
        fast, slow = paths[0], paths[-1]
        with pytest.raises(InfeasibleInstanceError):
            repair_solution(
                g, ids["s"], ids["t"], 2, 22, [slow, fast], dead_edges=[fast[0]]
            )


class TestRepairProperty:
    def test_random_failures_always_clean_or_infeasible(self):
        """For random single-link failures on provisioned instances, repair
        either returns a budget-feasible disjoint set avoiding the dead
        link, or certifies that pinning admits no repair."""
        import numpy as np

        from repro.eval.workloads import er_anticorrelated

        checked = 0
        for inst in er_anticorrelated(n=12, p=0.45, k=2, n_instances=8, seed=4242):
            try:
                sol = solve_krsp(
                    inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
                )
            except InfeasibleInstanceError:
                continue
            rng = np.random.default_rng(inst.seed)
            used = [e for p in sol.paths for e in p]
            for _ in range(3):
                victim = int(rng.choice(used))
                try:
                    rep = repair_solution(
                        inst.graph,
                        inst.s,
                        inst.t,
                        inst.k,
                        inst.delay_bound,
                        sol.paths,
                        dead_edges=[victim],
                    )
                except InfeasibleInstanceError:
                    continue
                assert victim not in [e for p in rep.paths for e in p]
                assert rep.delay <= inst.delay_bound
                check_disjoint_paths(
                    inst.graph, rep.paths, inst.s, inst.t, k=inst.k
                )
                checked += 1
        assert checked >= 5
