"""Unit tests for the search driver's certification/anti-trap rules and
failure-injection tests for the solver layers.

These target the decision logic directly with synthetic candidates, rather
than through whole instances — the complement of the end-to-end property
suite.
"""

import numpy as np
import pytest

from repro.core import build_residual
from repro.core.bicameral import CandidateCycle, CycleType
from repro.core.search import SearchStats, find_bicameral_cycle
from repro.errors import SolverError
from repro.graph import from_edges


def trap_graph():
    """Two ways out of a slow pair: a small good swap and a huge trap swap
    (a miniature of the Figure 1 phenomenon)."""
    return from_edges(
        [
            ("s", "a", 0, 10),  # 0 in solution
            ("a", "t", 0, 10),  # 1 in solution
            ("s", "b", 3, 1),  # 2 good: cycle cost 6, delay -18
            ("b", "t", 3, 1),  # 3
            ("s", "c", 50, 0),  # 4 trap: cycle cost 100, delay -20
            ("c", "t", 50, 0),  # 5
        ]
    )


class TestAntiTrapRule:
    def test_good_cycle_chosen_over_trap(self):
        g, ids = trap_graph()
        res = build_residual(g, [0, 1])
        # No strict estimate; soft bound generous (the trap would pass it).
        picked = find_bicameral_cycle(
            res,
            delta_d=-10,
            delta_c_estimate=None,
            cost_cap=None,
            delta_c_soft=1000,
        )
        assert picked is not None
        cand, ctype = picked
        assert cand.cost == 6 and cand.delay == -18

    def test_strict_certification_short_circuits(self):
        g, ids = trap_graph()
        res = build_residual(g, [0, 1])
        stats = SearchStats()
        picked = find_bicameral_cycle(
            res,
            delta_d=-18,
            delta_c_estimate=10,  # good cycle: -18/6 <= -18/10? -3 <= -1.8 yes
            cost_cap=None,
            stats=stats,
        )
        assert picked is not None and picked[1] is CycleType.TYPE1
        assert picked[0].cost == 6

    def test_cost_cap_excludes_trap_entirely(self):
        g, ids = trap_graph()
        res = build_residual(g, [0, 1])
        picked = find_bicameral_cycle(
            res,
            delta_d=-10,
            delta_c_estimate=None,
            cost_cap=20,  # trap cost 100 filtered by the cap
            delta_c_soft=1000,
        )
        assert picked is not None
        assert picked[0].cost == 6

    def test_b_max_truncation_still_returns_fallback(self):
        g, ids = trap_graph()
        res = build_residual(g, [0, 1])
        # Radius too small to represent either swap via the layered sweep;
        # the Bellman-Ford probes still feed the fallback.
        picked = find_bicameral_cycle(
            res,
            delta_d=-10,
            delta_c_estimate=None,
            cost_cap=None,
            b_max=1,
        )
        assert picked is not None


class TestFailureInjection:
    def test_lp_failure_surfaces_as_solver_error(self, monkeypatch):
        """A misbehaving LP backend must raise SolverError, not corrupt."""
        import scipy.optimize

        g, ids = trap_graph()
        res = build_residual(g, [0, 1])

        class FakeResult:
            status = 4
            success = False
            message = "injected failure"

        def boom(*args, **kwargs):
            return FakeResult()

        monkeypatch.setattr(scipy.optimize, "linprog", boom)
        from repro.core.auxgraph import build_aux_shifted
        from repro.core.auxlp import solve_ratio_lp

        aux = build_aux_shifted(res.graph, 8)
        with pytest.raises(SolverError, match="injected"):
            solve_ratio_lp(aux, +1)

    def test_milp_failure_surfaces_as_solver_error(self, monkeypatch):
        import scipy.optimize

        from repro.lp.milp import solve_krsp_milp

        class FakeResult:
            status = 1
            success = False
            message = "injected milp failure"
            x = None

        monkeypatch.setattr(scipy.optimize, "milp", lambda *a, **k: FakeResult())
        g, ids = trap_graph()
        with pytest.raises(SolverError, match="injected"):
            solve_krsp_milp(g, ids["s"], ids["t"], 1, 100)

    def test_flow_lp_failure_surfaces(self, monkeypatch):
        import scipy.optimize

        from repro.lp.flow_lp import solve_flow_lp

        class FakeResult:
            status = 4
            success = False
            message = "injected flow lp failure"

        monkeypatch.setattr(scipy.optimize, "linprog", lambda *a, **k: FakeResult())
        g, ids = trap_graph()
        with pytest.raises(SolverError, match="injected"):
            solve_flow_lp(g, ids["s"], ids["t"], 1, 100)

    def test_corrupt_rounding_input_rejected(self):
        from repro.lp.basis import round_flow_score_monotone

        g, ids = trap_graph()
        with pytest.raises(SolverError, match="length mismatch"):
            round_flow_score_monotone(g, np.zeros(2), 1.0, 1.0)
