"""Tests for flow decomposition into paths + cycles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.flow import decompose_flow, flow_from_paths, strip_improving_cycles
from repro.graph import from_edges, gnp_digraph, parallel_chains
from repro.graph.validate import check_disjoint_paths, is_cycle


class TestDecompose:
    def test_pure_paths(self):
        g, s, t = parallel_chains(2, 2)
        paths, cycles = decompose_flow(g, range(g.m), s, t)
        assert len(paths) == 2 and cycles == []
        check_disjoint_paths(g, paths, s, t, k=2)

    def test_pure_cycle(self):
        g, ids = from_edges([("a", "b", 1, 1), ("b", "a", 1, 1)], nodes=["s", "t", "a", "b"])
        paths, cycles = decompose_flow(g, [0, 1], ids["s"], ids["t"])
        assert paths == [] and len(cycles) == 1
        assert is_cycle(g, cycles[0])

    def test_path_plus_cycle(self):
        g, ids = from_edges(
            [
                ("s", "t", 1, 1),  # 0: the path
                ("a", "b", 1, 1),  # 1
                ("b", "a", 1, 1),  # 2
            ]
        )
        paths, cycles = decompose_flow(g, [0, 1, 2], ids["s"], ids["t"])
        assert paths == [[0]] and len(cycles) == 1

    def test_deterministic_lowest_edge_first(self):
        # Two ways to route 2 units through a shared middle vertex; the
        # peel must always pick the lowest edge id available.
        g, ids = from_edges(
            [
                ("s", "m", 1, 1),  # 0
                ("s", "m", 1, 1),  # 1
                ("m", "t", 1, 1),  # 2
                ("m", "t", 1, 1),  # 3
            ]
        )
        paths, _ = decompose_flow(g, [0, 1, 2, 3], ids["s"], ids["t"])
        assert paths == [[0, 2], [1, 3]]

    def test_rejects_imbalanced(self):
        g, ids = from_edges([("s", "a", 1, 1), ("a", "t", 1, 1)])
        with pytest.raises(GraphError):
            decompose_flow(g, [0], ids["s"], ids["t"])

    def test_rejects_duplicates(self):
        g, s, t = parallel_chains(1, 1)
        with pytest.raises(GraphError):
            decompose_flow(g, [0, 0], s, t)

    def test_s_eq_t_balanced_only(self):
        g, ids = from_edges([("a", "b", 1, 1), ("b", "a", 1, 1)])
        paths, cycles = decompose_flow(g, [0, 1], ids["a"], ids["a"])
        assert paths == [] and len(cycles) == 1
        with pytest.raises(GraphError):
            decompose_flow(g, [0], ids["a"], ids["a"])

    def test_empty(self):
        g, s, t = parallel_chains(1, 1)
        assert decompose_flow(g, [], s, t) == ([], [])


class TestFlowFromPaths:
    def test_round_trip(self):
        g, s, t = parallel_chains(3, 2)
        paths, _ = decompose_flow(g, range(g.m), s, t)
        assert flow_from_paths(paths) == sorted(range(g.m))

    def test_rejects_overlap(self):
        with pytest.raises(GraphError):
            flow_from_paths([[0, 1], [1, 2]])


class TestStripCycles:
    def test_accepts_nonnegative_cycles(self):
        g, ids = from_edges([("a", "b", 1, 0), ("b", "a", 0, 1)])
        assert strip_improving_cycles(g, [[5]], [[0, 1]]) == [[5]]

    def test_rejects_negative_cycles(self):
        g, ids = from_edges([("a", "b", -1, 0), ("b", "a", 0, 0)])
        with pytest.raises(GraphError):
            strip_improving_cycles(g, [], [[0, 1]])


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 100_000), st.integers(1, 3))
def test_decompose_preserves_edge_multiset(seed, k):
    """paths + cycles partition the input edge set exactly."""
    from repro.flow import max_disjoint_paths

    g = gnp_digraph(10, 0.35, rng=seed)
    s, t = 0, g.n - 1
    used = max_disjoint_paths(g, s, t, limit=k)
    eids = np.nonzero(used)[0]
    paths, cycles = decompose_flow(g, eids, s, t)
    got = sorted(e for p in paths for e in p) + sorted(e for c in cycles for e in c)
    assert sorted(got) == sorted(eids.tolist())
    for c in cycles:
        assert is_cycle(g, c)
