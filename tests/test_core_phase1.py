"""Tests for phase-1 providers (Lemma 5 and the Lagrangian invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import KRSPInstance
from repro.core.phase1 import (
    PROVIDERS,
    phase1_lagrangian,
    phase1_lp_rounding,
    phase1_minsum,
)
from repro.errors import InfeasibleInstanceError
from repro.graph import from_edges, gnp_digraph, anticorrelated_weights, parallel_chains
from repro.graph.validate import check_disjoint_paths
from repro.lp.milp import solve_krsp_milp
from repro.lp.flow_lp import solve_flow_lp


def make_instance(seed, n=11, k=2, D=45):
    g = anticorrelated_weights(gnp_digraph(n, 0.4, rng=seed), rng=seed + 1)
    try:
        return KRSPInstance(g, 0, n - 1, k, D)
    except Exception:
        return None


class TestMinsum:
    def test_cost_is_lower_bound(self):
        for seed in range(15):
            inst = make_instance(seed)
            try:
                res = phase1_minsum(inst)
            except InfeasibleInstanceError:
                continue
            exact = solve_krsp_milp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            if exact is None:
                continue
            assert res.solution.cost <= exact.cost
            assert res.cost_lower_bound == res.solution.cost

    def test_infeasible_raises(self):
        g, s, t = parallel_chains(2, 2)
        inst = KRSPInstance(g, s, t, 2, 100)
        bad = KRSPInstance(g, s, t, 2, 100)
        with pytest.raises(InfeasibleInstanceError):
            phase1_minsum(KRSPInstance(g, s, t, 3, 100))

    def test_paths_valid(self):
        inst = make_instance(3)
        res = phase1_minsum(inst)
        check_disjoint_paths(
            inst.graph,
            [list(p) for p in res.solution.paths],
            inst.s,
            inst.t,
            k=inst.k,
        )


class TestLpRounding:
    def test_lemma5_score_bound(self):
        checked = 0
        for seed in range(20):
            inst = make_instance(seed)
            lp = solve_flow_lp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
            if lp is None or lp.cost <= 0:
                continue
            res = phase1_lp_rounding(inst)
            sol = res.solution
            score = sol.delay / inst.delay_bound + sol.cost / lp.cost
            assert score <= 2 + 1e-6, (seed, score)
            # Lower bound reported matches the LP optimum.
            assert abs(float(res.cost_lower_bound) - lp.cost) < 1e-4
            checked += 1
        assert checked >= 5

    def test_lp_infeasible_raises(self):
        g, s, t = parallel_chains(2, 2)
        import numpy as np

        g = g.with_weights(np.ones(g.m, np.int64), np.full(g.m, 50, np.int64))
        inst = KRSPInstance(g, s, t, 2, 100)  # needs 200 delay
        with pytest.raises(InfeasibleInstanceError):
            phase1_lp_rounding(inst)


class TestLagrangian:
    def test_feasible_min_cost_is_exact(self):
        g, ids = from_edges(
            [("s", "t", 1, 1), ("s", "t", 2, 1), ("s", "t", 9, 9)]
        )
        inst = KRSPInstance(g, ids["s"], ids["t"], 2, 10)
        res = phase1_lagrangian(inst)
        assert res.solution.cost == 3
        assert res.cost_lower_bound == 3

    def test_crossing_flow_cost_under_opt(self):
        checked = 0
        for seed in range(20):
            inst = make_instance(seed)
            exact = solve_krsp_milp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
            if exact is None:
                continue
            try:
                res = phase1_lagrangian(inst)
            except InfeasibleInstanceError:
                continue
            assert res.solution.cost <= exact.cost
            assert res.cost_lower_bound <= exact.cost
            checked += 1
        assert checked >= 5

    def test_infeasible_structure_raises(self):
        g, s, t = parallel_chains(2, 2)
        with pytest.raises(InfeasibleInstanceError):
            phase1_lagrangian(KRSPInstance(g, s, t, 3, 100))


def test_registry_complete():
    assert set(PROVIDERS) == {"lp_rounding", "lagrangian", "minsum"}
    for fn in PROVIDERS.values():
        assert callable(fn)
