"""Crash-safety contract tests: journal format, torn tails, bit-identical
resume, tamper rejection, signals, and the pinned golden fixture.

The instance used throughout is the 3-iteration member of the chaos
corpus (see ``scripts/chaos_gate.py``): small enough for test time,
deep enough that a cut can land before, between, and after snapshots
(``checkpoint_every=2`` puts a snapshot mid-history).
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.krsp import solve_krsp
from repro.errors import JournalError, SolveInterrupted
from repro.graph.generators import gnp_digraph
from repro.graph.io import save_instance
from repro.graph.weights import anticorrelated_weights
from repro.robustness import (
    JOURNAL_FORMAT_VERSION,
    JournalWriter,
    read_journal,
    resume_krsp,
    solve_checkpointed,
)

SRC = Path(__file__).resolve().parent.parent / "src"
CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
GOLDEN_FIXTURE = CORPUS_DIR / "golden_v1.journal"


@pytest.fixture(autouse=True)
def _pin_deterministic_lp_backend(monkeypatch):
    """Resume-vs-uninterrupted byte identity needs the scipy LP backend:
    warm-started highspy solves are history-dependent, and a resumed run
    has a different warm history than an uninterrupted one. The env pin
    also rides into every subprocess this suite spawns (they copy
    ``os.environ``)."""
    from repro.lp import engine as lp_engine

    monkeypatch.setenv(lp_engine.BACKEND_ENV, "scipy")
    lp_engine.reset_engine()
    yield
    lp_engine.reset_engine()


def _instance():
    rng = np.random.default_rng(21)
    g = gnp_digraph(16, 0.30, rng=rng)
    g = anticorrelated_weights(g, total=37, noise=3, rng=rng)
    return g, 0, 15, 3, 231


def _fp(sol):
    return (
        tuple(tuple(int(e) for e in p) for p in sol.paths),
        sol.cost, sol.delay, sol.status, sol.iterations,
    )


def _trail(tel):
    return [
        {k: v for k, v in e.items() if k != "seq"}
        for e in tel.events
        if e.get("kind") == "cancel.iteration"
    ]


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """One checkpointed golden run shared by the read-only tests."""
    path = tmp_path_factory.mktemp("golden") / "golden.journal"
    g, s, t, k, bound = _instance()
    with obs.session(label="golden") as tel:
        sol = solve_checkpointed(
            g, s, t, k, bound, journal_path=path,
            checkpoint_every=2, phase1="minsum",
        )
    assert sol.iterations >= 3, "chaos instance regressed to trivial"
    return {"raw": path.read_bytes(), "fp": _fp(sol), "trail": _trail(tel)}


def _record_frames(raw: bytes) -> list[tuple[int, int]]:
    """(start, end-past-newline) of every intact record."""
    frames, pos = [], 0
    while pos < len(raw):
        sp1 = raw.find(b" ", pos)
        sp2 = raw.find(b" ", sp1 + 1)
        end = sp2 + 1 + int(raw[pos:sp1])
        frames.append((pos, end + 1))
        pos = end + 1
    return frames


def _reframe(payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return f"{len(body)} {zlib.crc32(body) & 0xFFFFFFFF:08x} ".encode() + body + b"\n"


def _rewrite_record(raw: bytes, index: int, mutate) -> bytes:
    """Re-frame record ``index`` after applying ``mutate`` to its payload
    (valid CRC — this is semantic tampering, not bit rot)."""
    frames = _record_frames(raw)
    start, end = frames[index]
    body = raw[raw.find(b" ", raw.find(b" ", start) + 1) + 1 : end - 1]
    payload = json.loads(body)
    mutate(payload)
    return raw[:start] + _reframe(payload) + raw[end:]


# -- format layer ---------------------------------------------------------


def test_journal_roundtrip_and_seal(tmp_path):
    path = tmp_path / "j.journal"
    w = JournalWriter.fresh(path, instance={"n": 3}, config={"x": 1})
    w.append({"kind": "iteration", "iteration": 0})
    w.close()
    doc = read_journal(path)
    assert [r["kind"] for r in doc.records] == ["header", "iteration"]
    assert doc.header["format"] == JOURNAL_FORMAT_VERSION
    assert len(doc.header["seal"]) == 64
    assert doc.torn_bytes == 0


def test_torn_tail_is_truncated_not_fatal(tmp_path, golden):
    path = tmp_path / "torn.journal"
    path.write_bytes(golden["raw"] + b"189 deadbeef {\"kind\": \"iter")
    doc = read_journal(path)
    assert doc.torn_bytes > 0
    assert doc.records[-1]["kind"] == "final"


def test_unknown_format_version_rejected(tmp_path, golden):
    def bump(payload):
        payload["format"] = JOURNAL_FORMAT_VERSION + 1

    path = tmp_path / "future.journal"
    path.write_bytes(_rewrite_record(golden["raw"], 0, bump))
    with pytest.raises(JournalError, match="unsupported journal format"):
        read_journal(path)


def test_not_a_journal_rejected(tmp_path):
    path = tmp_path / "noise.journal"
    path.write_bytes(b"this is not a journal\n")
    with pytest.raises(JournalError, match="no intact journal header"):
        read_journal(path)


# -- resume semantics -----------------------------------------------------


def test_checkpoint_disabled_solve_is_bit_identical(golden):
    g, s, t, k, bound = _instance()
    plain = solve_krsp(g, s, t, k, bound, phase1="minsum")
    assert _fp(plain) == golden["fp"]


def test_resume_bit_identical_across_cuts(tmp_path, golden):
    raw = golden["raw"]
    frames = _record_frames(raw)
    # Clean cuts at every record boundary (including the complete journal:
    # resuming a finished run must short-circuit to the same answer) plus
    # torn cuts inside three different records.
    cuts = [end for _, end in frames]
    for idx in (1, len(frames) // 2, len(frames) - 1):
        start, end = frames[idx]
        cuts.append(start + max(1, (end - start) // 2))
    for cut in cuts:
        path = tmp_path / f"cut{cut}.journal"
        path.write_bytes(raw[:cut])
        with obs.session(label=f"cut{cut}") as tel:
            sol = resume_krsp(path)
        assert _fp(sol) == golden["fp"], f"cut at byte {cut}"
        assert _trail(tel) == golden["trail"], f"cut at byte {cut}"


def test_tampered_iteration_record_rejected(tmp_path, golden):
    doc_kinds = [r["kind"] for r in read_journal_bytes(golden["raw"])]
    idx = doc_kinds.index("iteration")

    def corrupt(payload):
        payload["cost_after"] = str(int(payload["cost_after"]) + 1)

    # Cut after the tampered record so replay must validate it.
    frames = _record_frames(golden["raw"])
    tampered = _rewrite_record(golden["raw"], idx, corrupt)
    path = tmp_path / "tampered.journal"
    path.write_bytes(tampered[: _record_frames(tampered)[idx][1]])
    with pytest.raises(JournalError):
        resume_krsp(path)
    assert frames  # silence unused warning paranoia


def test_header_seal_mismatch_rejected(tmp_path, golden):
    def retarget(payload):
        payload["instance"]["k"] = payload["instance"]["k"] + 1  # stale seal

    path = tmp_path / "sealbreak.journal"
    path.write_bytes(_rewrite_record(golden["raw"], 0, retarget))
    with pytest.raises(JournalError, match="seal"):
        resume_krsp(path)


def read_journal_bytes(raw: bytes):
    frames = _record_frames(raw)
    out = []
    for start, end in frames:
        body = raw[raw.find(b" ", raw.find(b" ", start) + 1) + 1 : end - 1]
        out.append(json.loads(body))
    return out


# -- golden fixture (format evolution tripwire) ---------------------------


def test_golden_fixture_replays():
    """The committed v1 journal must resume forever.

    If a record schema change breaks this test, the change is
    incompatible: bump JOURNAL_FORMAT_VERSION (old journals are then
    rejected loudly) and regenerate the fixture with
    ``python scripts/make_golden_journal.py``.
    """
    assert JOURNAL_FORMAT_VERSION == 1, (
        "format version bumped: regenerate tests/corpus/golden_v1.journal "
        "(scripts/make_golden_journal.py) and repin this test"
    )
    # .expect, not .json: the oracle corpus loader globs *.json and would
    # choke on a foreign payload in tests/corpus/.
    expected = json.loads((CORPUS_DIR / "golden_v1.expect").read_text())
    raw = GOLDEN_FIXTURE.read_bytes()
    import tempfile

    with tempfile.TemporaryDirectory() as td:
        # Resume appends to the journal; never touch the committed copy.
        work = Path(td) / "golden_v1.journal"
        work.write_bytes(raw)
        sol = resume_krsp(work)
        assert sol.cost == expected["cost"]
        assert sol.delay == expected["delay"]
        assert sol.iterations == expected["iterations"]
        assert [list(p) for p in sol.paths] == expected["paths"]

        # And from a mid-history cut: replay + live continuation.
        frames = _record_frames(raw)
        cut = frames[len(frames) // 2][1]
        work.write_bytes(raw[:cut])
        sol2 = resume_krsp(work)
        assert _fp(sol2) == _fp(sol)


# -- process-level: signals and kills -------------------------------------


def _spawn_solve(inst_path, journal, extra_env, *args):
    env = dict(os.environ, PYTHONPATH=str(SRC), **extra_env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "solve", str(inst_path),
         "--checkpoint", str(journal), "--checkpoint-every", "2",
         "--phase1", "minsum", *args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


@pytest.fixture()
def inst_file(tmp_path):
    g, s, t, k, bound = _instance()
    path = tmp_path / "inst.json"
    save_instance(path, g, s, t, k, bound)
    return path


def test_sigint_flushes_checkpoint_and_exits_130(tmp_path, inst_file, golden):
    journal = tmp_path / "sig.journal"
    # Per-record delay keeps the solve inside the loop long enough for the
    # signal to land deterministically mid-run.
    proc = _spawn_solve(inst_file, journal, {"REPRO_JOURNAL_DELAY_PER_RECORD": "0.3"})
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline and not journal.exists():
        time.sleep(0.02)
    assert journal.exists()
    proc.send_signal(signal.SIGINT)
    _, err = proc.communicate(timeout=120)
    assert proc.returncode == 130, err[-2000:]
    assert "checkpoint flushed to" in err
    assert "repro resume" in err
    # The flushed journal resumes to the uninterrupted answer.
    sol = resume_krsp(journal)
    assert _fp(sol) == golden["fp"]


def test_sigkill_then_cli_resume(tmp_path, inst_file, golden):
    journal = tmp_path / "kill.journal"
    proc = _spawn_solve(inst_file, journal, {"REPRO_JOURNAL_KILL_AFTER_RECORDS": "4"})
    proc.communicate(timeout=120)
    assert proc.returncode == -signal.SIGKILL
    env = dict(os.environ, PYTHONPATH=str(SRC))
    out = subprocess.run(
        [sys.executable, "-m", "repro", "resume", str(journal)],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr[-2000:]
    _, cost, delay, *_ = golden["fp"]
    assert f"cost={cost} delay={delay}" in out.stdout


def test_sweep_interrupt_keeps_durable_records_and_resumes(tmp_path):
    """First strike mid-sweep: SolveInterrupted carries the JSONL path and
    a later --resume run re-runs only the missing trials."""
    from repro.eval.parallel import run_trials_parallel
    from repro.eval.workloads import WORKLOADS
    from repro.robustness import GracefulShutdown

    insts = list(WORKLOADS["er_anticorrelated"](n_instances=2, seed=2015, n=12))
    jsonl = tmp_path / "sweep.jsonl"
    shutdown = GracefulShutdown()
    shutdown.signum = signal.SIGINT  # signal already delivered
    with pytest.raises(SolveInterrupted) as exc_info:
        run_trials_parallel(
            insts, ["minsum"], max_workers=2,
            jsonl_path=jsonl, shutdown=shutdown,
        )
    assert exc_info.value.signum == signal.SIGINT
    assert exc_info.value.checkpoint_path == str(jsonl)

    records = run_trials_parallel(
        insts, ["minsum"], max_workers=2, jsonl_path=jsonl, resume=True,
    )
    assert all(r.status == "ok" for r in records)
    # Everything durable now; a second resume runs nothing new.
    again = run_trials_parallel(
        insts, ["minsum"], max_workers=2, jsonl_path=jsonl, resume=True,
    )
    assert [(r.cost, r.delay) for r in again] == [
        (r.cost, r.delay) for r in records
    ]
