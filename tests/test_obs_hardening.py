"""Regression tests for the metrics push-path hardening (PR 8).

Three bugs the solve service exposed, each pinned here:

* ``POST /push`` trusted ``Content-Length`` blindly (no cap, no
  validation) and accepted pushes from any source — now 400/413/403.
* ``snapshot_session`` iterated the live session dicts while solver
  threads mutated them (``RuntimeError: dictionary changed size during
  iteration``) and could tear a histogram's ``sum``/``count`` pair —
  now snapshots under the session lock.
* ``MetricsPublisher._push_once`` swallowed *every* exception (so the
  snapshot race silently dropped pushes) and ``close()`` could
  double-push — now only transport errors are swallowed, and close is
  idempotent with exactly one final push.
"""

from __future__ import annotations

import http.client
import threading
import urllib.error

import pytest

import repro.obs as obs
import repro.obs.server as obs_server
from repro.obs.hist import validate_histogram
from repro.obs.server import (
    MAX_PUSH_BYTES,
    MetricsPublisher,
    MetricsServer,
    _is_loopback,
    push_snapshot,
    snapshot_session,
)


@pytest.fixture
def server():
    srv = MetricsServer(0)
    yield srv
    srv.close()


def _raw_post(srv: MetricsServer, headers: dict[str, str], body: bytes = b""):
    """POST /push with exact headers (no automatic Content-Length)."""
    conn = http.client.HTTPConnection(srv.host, srv.port, timeout=5.0)
    try:
        conn.putrequest("POST", "/push", skip_accept_encoding=True)
        for name, value in headers.items():
            conn.putheader(name, value)
        conn.endheaders()
        if body:
            conn.send(body)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


class TestPushRequestValidation:
    def test_missing_content_length_is_400(self, server):
        status, body = _raw_post(server, {"Content-Type": "application/json"})
        assert status == 400
        assert b"Content-Length" in body

    def test_malformed_content_length_is_400(self, server):
        status, _ = _raw_post(server, {"Content-Length": "banana"})
        assert status == 400

    def test_negative_content_length_is_400(self, server):
        status, body = _raw_post(server, {"Content-Length": "-17"})
        assert status == 400
        assert b"negative" in body

    def test_oversized_content_length_is_413_without_reading_body(
        self, server
    ):
        # The cap must reject on the *declared* length, before any body
        # bytes are read — a liar declaring 100 GiB must not make the
        # aggregator try to allocate it.
        status, body = _raw_post(
            server, {"Content-Length": str(MAX_PUSH_BYTES + 1)}
        )
        assert status == 413
        assert str(MAX_PUSH_BYTES).encode() in body

    def test_at_cap_is_still_parsed_not_rejected(self, server):
        # Boundary: exactly MAX_PUSH_BYTES is allowed through to the
        # JSON parser (it fails as a bad snapshot, not as oversized).
        status, _ = _raw_post(
            server,
            {"Content-Length": "2", "Content-Type": "application/json"},
            b"{}",
        )
        assert status == 400  # parsed, rejected as a bad snapshot

    def test_valid_push_still_accepted(self, server):
        with obs.session(label="hardening") as tel:
            obs.inc("krsp.solves")
        push_snapshot(server.url, snapshot_session(tel, "hardening"))
        assert "repro_krsp_solves_total 1" in server.registry.render()


class TestLoopbackOnlyPush:
    def test_is_loopback_classifier(self):
        assert _is_loopback("127.0.0.1")
        assert _is_loopback("127.8.8.8")
        assert _is_loopback("::1")
        assert _is_loopback("::ffff:127.0.0.1")
        assert not _is_loopback("10.0.0.5")
        assert not _is_loopback("::ffff:10.0.0.5")
        assert not _is_loopback("192.168.1.2")

    def test_non_loopback_push_is_403(self, server, monkeypatch):
        # The test client genuinely is loopback, so simulate a remote
        # peer by forcing the classifier — the route logic is what's
        # under test.
        monkeypatch.setattr(obs_server, "_is_loopback", lambda ip: False)
        with obs.session(label="remote") as tel:
            obs.inc("krsp.solves")
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            push_snapshot(server.url, snapshot_session(tel, "remote"))
        assert exc_info.value.code == 403

    def test_allow_remote_push_opt_in(self, monkeypatch):
        monkeypatch.setattr(obs_server, "_is_loopback", lambda ip: False)
        srv = MetricsServer(0, allow_remote_push=True)
        try:
            with obs.session(label="remote-ok") as tel:
                obs.inc("krsp.solves")
            push_snapshot(srv.url, snapshot_session(tel, "remote-ok"))
            assert srv.registry.health()["sources"] == 1
        finally:
            srv.close()

    def test_remote_scrape_stays_open(self, server, monkeypatch):
        # Read-only routes must NOT be affected by the loopback gate.
        monkeypatch.setattr(obs_server, "_is_loopback", lambda ip: False)
        import urllib.request

        with urllib.request.urlopen(server.url + "/metrics", timeout=5.0) as r:
            assert r.status == 200


class _RecordingLock:
    """A lock that records whether it was held during a callback."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.acquired = 0

    def __enter__(self):
        self._lock.acquire()
        self.acquired += 1
        return self

    def __exit__(self, *exc):
        self._lock.release()


class TestSnapshotRace:
    def test_snapshot_acquires_the_session_lock(self):
        with obs.session(label="locked") as tel:
            obs.inc("krsp.solves")
        recorder = _RecordingLock()
        tel.lock = recorder
        snapshot_session(tel, "locked")
        assert recorder.acquired == 1

    def test_telemetry_recording_goes_through_the_lock(self):
        tel = obs.Telemetry(label="locked")
        recorder = _RecordingLock()
        tel.lock = recorder
        tel.add_counter("a", 1)
        tel.set_gauge("b", 2.0)
        tel.observe_hist("c", 0.5)
        assert recorder.acquired == 3

    def test_concurrent_mutation_never_tears_a_snapshot(self):
        """The original failure: a solver thread inserting new keys
        mid-snapshot raised RuntimeError (dict changed size during
        iteration) or produced a histogram whose sum/count disagreed."""
        tel = obs.Telemetry(label="race")
        stop = threading.Event()

        def hammer() -> None:
            i = 0
            while not stop.is_set():
                tel.add_counter(f"c.{i % 257}", 1)
                tel.observe_hist(f"h.{i % 131}", 1e-4 * (i % 97 + 1))
                i += 1

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                snap = snapshot_session(tel, "race")  # must never raise
                for name, h in snap["histograms"].items():
                    assert validate_histogram(name, h) == [], (
                        f"torn histogram {name}: {h}"
                    )
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_duck_typed_session_without_lock_still_snapshots(self):
        class Bare:
            counters = {"x": 1}
            gauges = {}
            histograms = {}

        snap = snapshot_session(Bare(), "bare")
        assert snap["counters"] == {"x": 1}


class TestPublisherPushPath:
    def test_transport_errors_are_swallowed(self):
        tel = obs.Telemetry(label="pub")
        # Point at a port nobody listens on: URLError territory.
        pub = MetricsPublisher("http://127.0.0.1:9", tel, "pub", interval=999)
        try:
            pub._push_once()
            assert pub.errors == 1
            assert pub.pushes == 0
        finally:
            pub.close()

    def test_snapshot_bugs_propagate_instead_of_vanishing(
        self, server, monkeypatch
    ):
        """Before the fix, a bare ``except Exception`` here swallowed the
        snapshot race's RuntimeError — pushes silently stopped while the
        publisher reported itself healthy."""
        tel = obs.Telemetry(label="pub")
        pub = MetricsPublisher(server.url, tel, "pub", interval=999)
        try:
            monkeypatch.setattr(
                obs_server, "snapshot_session",
                lambda *a, **k: (_ for _ in ()).throw(
                    RuntimeError("dictionary changed size during iteration")
                ),
            )
            with pytest.raises(RuntimeError):
                pub._push_once()
        finally:
            monkeypatch.undo()
            pub.close()

    def test_close_is_idempotent_single_final_push(self, server):
        tel = obs.Telemetry(label="final")
        tel.add_counter("krsp.solves", 3)
        pub = MetricsPublisher(server.url, tel, "final", interval=999)
        assert pub.pushes == 0  # interval too long for a periodic push
        pub.close()
        assert pub.pushes == 1  # exactly the final push
        pub.close()
        pub.close()
        assert pub.pushes == 1  # idempotent: no double final push
        health = server.registry.health()
        assert health["sources"] == 1

    def test_concurrent_closes_push_at_most_once(self, server):
        tel = obs.Telemetry(label="cc")
        pub = MetricsPublisher(server.url, tel, "cc", interval=999)
        barrier = threading.Barrier(4)

        def closer() -> None:
            barrier.wait()
            pub.close()

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert pub.pushes <= 1
