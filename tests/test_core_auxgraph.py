"""Tests for auxiliary graphs (Algorithm 2) and Lemma 15 correspondence."""

import itertools

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_aux_paper, build_aux_shifted, build_residual
from repro.core.auxlp import (
    candidates_from_circulation,
    peel_fractional_cycles,
    solve_ratio_lp,
)
from repro.errors import GraphError
from repro.graph import from_edges, gnp_digraph, to_networkx, uniform_weights
from repro.graph.validate import is_cycle


@pytest.fixture
def residual_example():
    """Residual of a 4-cycle instance with one reversed path."""
    g, ids = from_edges(
        [
            ("s", "a", 2, 3),  # 0 (in solution)
            ("a", "t", 1, 4),  # 1 (in solution)
            ("s", "b", 1, 1),  # 2
            ("b", "t", 1, 1),  # 3
            ("a", "b", 1, 1),  # 4
            ("b", "a", 2, 1),  # 5
        ]
    )
    return g, ids, build_residual(g, [0, 1])


class TestShiftedConstruction:
    def test_sizes(self, residual_example):
        g, ids, res = residual_example
        B = 3
        aux = build_aux_shifted(res.graph, B)
        assert aux.graph.n == g.n * (2 * B + 1)
        assert aux.n_layers == 2 * B + 1 and aux.offset == B
        # Wraps: per vertex, 2 per c0 in 1..B.
        assert int(aux.is_wrap().sum()) == g.n * 2 * B

    def test_node_indexing(self, residual_example):
        g, ids, res = residual_example
        aux = build_aux_shifted(res.graph, 2)
        assert aux.node(0, 0) == 0 * 5 + 2
        assert aux.node(1, -2) == 1 * 5 + 0
        with pytest.raises(GraphError):
            aux.node(0, 3)

    def test_edges_shift_layers_by_cost(self, residual_example):
        g, ids, res = residual_example
        B = 3
        aux = build_aux_shifted(res.graph, B)
        h = aux.graph
        for he in range(h.m):
            oe = int(aux.orig_eid[he])
            if oe < 0:
                continue
            tail_layer = int(h.tail[he]) % aux.n_layers
            head_layer = int(h.head[he]) % aux.n_layers
            assert head_layer - tail_layer == int(res.graph.cost[oe])
            assert int(h.tail[he]) // aux.n_layers == int(res.graph.tail[oe])
            assert int(h.head[he]) // aux.n_layers == int(res.graph.head[oe])
            assert int(h.delay[he]) == int(res.graph.delay[oe])

    def test_wraps_are_zero_delay(self, residual_example):
        g, ids, res = residual_example
        aux = build_aux_shifted(res.graph, 2)
        wraps = aux.is_wrap()
        assert (aux.graph.delay[wraps] == 0).all()
        assert (np.abs(aux.wrap_cost[wraps]) >= 1).all()

    def test_b_validation(self, residual_example):
        g, ids, res = residual_example
        with pytest.raises(GraphError):
            build_aux_shifted(res.graph, 0)


class TestPaperConstruction:
    def test_plus_layers_and_wraps(self, residual_example):
        g, ids, res = residual_example
        B = 4
        aux = build_aux_paper(res.graph, ids["a"], B, +1)
        assert aux.graph.n == g.n * (B + 1)
        wraps = np.nonzero(aux.is_wrap())[0]
        assert len(wraps) == B
        # All wraps anchored at vertex a, targeting layer 0.
        for we in wraps:
            assert int(aux.graph.tail[we]) // (B + 1) == ids["a"]
            assert int(aux.graph.head[we]) == ids["a"] * (B + 1)

    def test_minus_wraps_target_layer_B(self, residual_example):
        g, ids, res = residual_example
        B = 4
        aux = build_aux_paper(res.graph, ids["b"], B, -1)
        wraps = np.nonzero(aux.is_wrap())[0]
        assert len(wraps) == B
        for we in wraps:
            assert int(aux.graph.head[we]) == ids["b"] * (B + 1) + B
        assert (aux.wrap_cost[wraps] < 0).all()

    def test_sign_validation(self, residual_example):
        g, ids, res = residual_example
        with pytest.raises(GraphError):
            build_aux_paper(res.graph, 0, 3, 0)


def enumerate_residual_cycles(res_g):
    """All simple cycles of the residual graph as edge-id lists (first
    parallel edge per hop plus per-combination expansion)."""
    nxg = to_networkx(res_g)
    out = []
    for node_cycle in nx.simple_cycles(nxg):
        hops = list(zip(node_cycle, node_cycle[1:] + [node_cycle[0]]))
        options = []
        ok = True
        for a, b in hops:
            if not nxg.has_edge(a, b):
                ok = False
                break
            options.append([d["eid"] for d in nxg[a][b].values()])
        if not ok:
            continue
        for combo in itertools.product(*options):
            out.append(list(combo))
    return out


class TestLemma15:
    """Cycle correspondence between residual graph and H (both variants)."""

    def _h_has_cycle_matching(self, aux, res_g, cycle, start_vertex):
        """Check the H-representability of `cycle` started at start_vertex
        by walking layers explicitly."""
        level = 0
        # rotate cycle to start at start_vertex
        tails = [int(res_g.tail[e]) for e in cycle]
        if start_vertex not in tails:
            return False
        i = tails.index(start_vertex)
        rotated = cycle[i:] + cycle[:i]
        try:
            node = aux.node(start_vertex, 0)
        except GraphError:
            return False
        for e in rotated:
            level += int(res_g.cost[e])
            try:
                aux.node(int(res_g.head[e]), level)
            except GraphError:
                return False
        return True

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 50_000))
    def test_shifted_represents_all_cycles_at_full_radius(self, seed):
        g = uniform_weights(gnp_digraph(6, 0.4, rng=seed), (1, 4), (1, 4), rng=seed + 1)
        res = build_residual(g, [])
        cycles = enumerate_residual_cycles(res.graph)
        if not cycles:
            return
        B = int(np.abs(res.graph.cost).sum())
        aux = build_aux_shifted(res.graph, max(B, 1))
        for cyc in cycles:
            # At full radius every cycle is representable from any start.
            start = int(res.graph.tail[cyc[0]])
            assert self._h_has_cycle_matching(aux, res.graph, cyc, start)

    def test_paper_plus_requires_nonnegative_prefix(self, residual_example):
        g, ids, res = residual_example
        # Cycle through reversed edges has negative prefixes from some
        # starts; the paper H^+ (layers 0..B) cannot host those.
        B = 6
        aux = build_aux_paper(res.graph, ids["a"], B, +1)
        # Cycle a->b (cost 1), b->a via edge 5 (cost 2): all-positive costs,
        # prefix stays in [0, 3] — representable.
        assert self._h_has_cycle_matching_paper(aux, res.graph, [4, 5], ids["a"])

    def _h_has_cycle_matching_paper(self, aux, res_g, cycle, start_vertex):
        level = 0
        tails = [int(res_g.tail[e]) for e in cycle]
        if start_vertex not in tails:
            return False
        i = tails.index(start_vertex)
        rotated = cycle[i:] + cycle[:i]
        for e in rotated:
            level += int(res_g.cost[e])
            if not 0 <= level <= aux.B:
                return False
        return True

    def test_projection_round_trip(self, residual_example):
        """H cycles project back to residual closed walks exactly."""
        g, ids, res = residual_example
        aux = build_aux_shifted(res.graph, 4)
        # Construct an H cycle manually for residual cycle [4, 5] (a->b->a)
        # starting at a, levels 0 -> 1 -> 3, then wrap (a,3)->(a,0).
        h = aux.graph
        lvl = 0
        h_edges = []
        cur = ids["a"]
        for e in (4, 5):
            nxt_lvl = lvl + int(res.graph.cost[e])
            tail_node = aux.node(cur, lvl)
            head_node = aux.node(int(res.graph.head[e]), nxt_lvl)
            matches = [
                he
                for he in range(h.m)
                if int(h.tail[he]) == tail_node
                and int(h.head[he]) == head_node
                and int(aux.orig_eid[he]) == e
            ]
            assert matches, "expected layered copy missing"
            h_edges.append(matches[0])
            cur = int(res.graph.head[e])
            lvl = nxt_lvl
        # wrap back
        wrap = [
            he
            for he in range(h.m)
            if aux.orig_eid[he] < 0
            and int(h.tail[he]) == aux.node(ids["a"], lvl)
            and int(h.head[he]) == aux.node(ids["a"], 0)
        ]
        assert wrap
        h_cycle = h_edges + [wrap[0]]
        assert is_cycle(h, h_cycle)
        walk = aux.to_residual_walk(h_cycle)
        assert walk == [4, 5]


class TestVariantEquivalence:
    """Cycles representable in the paper's H_v^+(B) are always representable
    in the shifted H(B) — the generalization never loses coverage."""

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 50_000))
    def test_shifted_covers_paper_representable(self, seed):
        g = uniform_weights(gnp_digraph(6, 0.4, rng=seed), (1, 4), (1, 4), rng=seed + 1)
        res = build_residual(g, [])
        cycles = enumerate_residual_cycles(res.graph)
        if not cycles:
            return
        B = 6
        aux_shifted = build_aux_shifted(res.graph, B)
        for cyc in cycles:
            for start_idx in range(len(cyc)):
                rotated = cyc[start_idx:] + cyc[:start_idx]
                start = int(res.graph.tail[rotated[0]])
                # Paper representability: prefixes within [0, B].
                prefix, ok_paper = 0, True
                for e in rotated:
                    prefix += int(res.graph.cost[e])
                    if not 0 <= prefix <= B:
                        ok_paper = False
                        break
                if not ok_paper:
                    continue
                # Then the shifted graph must host it from the same start
                # (its window [-B, B] contains [0, B]).
                lvl, ok_shifted = 0, True
                for e in rotated:
                    lvl += int(res.graph.cost[e])
                    if not -B <= lvl <= B:
                        ok_shifted = False
                        break
                assert ok_shifted
