"""Tests for exact RSP DP, the RSP FPTAS, and LARAC.

The exact DP is validated against brute-force path enumeration; the FPTAS
and LARAC are then validated against the exact DP.
"""

import itertools

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import from_edges, gnp_digraph, to_networkx, uniform_weights
from repro.graph.validate import is_path
from repro.paths import larac, rsp_exact, rsp_fptas


def brute_force_rsp(g, s, t, D):
    """Reference: enumerate all simple paths, keep delay-feasible minimum."""
    nxg = to_networkx(g)
    best = None
    if s == t:
        return (0, [])
    for node_path in nx.all_simple_paths(nxg, s, t):
        # Expand node path into all parallel-edge choices.
        options = []
        for u, v in zip(node_path, node_path[1:]):
            options.append([d["eid"] for d in nxg[u][v].values()])
        for combo in itertools.product(*options):
            cost = g.cost_of(list(combo))
            delay = g.delay_of(list(combo))
            if delay <= D and (best is None or cost < best[0]):
                best = (cost, list(combo))
    return best


class TestRspExact:
    def test_diamond_budget_switches_route(self, diamond):
        g, ids = diamond
        s, t = ids["s"], ids["t"]
        # Loose budget: cheap slow route (cost 2, delay 20).
        assert rsp_exact(g, s, t, 20)[0] == 2
        # Tight budget: forced onto the fast route (cost 20, delay 2).
        assert rsp_exact(g, s, t, 19)[0] == 20
        assert rsp_exact(g, s, t, 2)[0] == 20
        assert rsp_exact(g, s, t, 1) is None

    def test_returns_actual_path(self, diamond):
        g, ids = diamond
        cost, path = rsp_exact(g, ids["s"], ids["t"], 2)
        assert is_path(g, path, ids["s"], ids["t"])
        assert g.cost_of(path) == cost and g.delay_of(path) <= 2

    def test_s_equals_t(self, diamond):
        g, ids = diamond
        assert rsp_exact(g, ids["s"], ids["s"], 0) == (0, [])

    def test_negative_bound_infeasible(self, diamond):
        g, ids = diamond
        assert rsp_exact(g, ids["s"], ids["t"], -1) is None

    def test_zero_delay_edges(self):
        g, ids = from_edges(
            [("s", "a", 5, 0), ("a", "t", 5, 0), ("s", "t", 100, 0)]
        )
        assert rsp_exact(g, ids["s"], ids["t"], 0) == (10, [0, 1])

    def test_zero_delay_cycle_does_not_loop(self):
        g, ids = from_edges(
            [("s", "a", 1, 0), ("a", "b", 0, 0), ("b", "a", 0, 0), ("a", "t", 1, 0)]
        )
        cost, path = rsp_exact(g, ids["s"], ids["t"], 0)
        assert cost == 2

    def test_unreachable(self):
        g, ids = from_edges([("s", "a", 1, 1)], nodes=["s", "a", "t"])
        assert rsp_exact(g, ids["s"], ids["t"], 10) is None

    def test_prefers_smaller_delay_among_equal_cost(self):
        g, ids = from_edges([("s", "t", 5, 9), ("s", "t", 5, 3)])
        cost, path = rsp_exact(g, ids["s"], ids["t"], 10)
        assert cost == 5 and g.delay_of(path) == 3


@settings(deadline=None, max_examples=30)
@given(st.integers(0, 100_000), st.integers(0, 30))
def test_rsp_exact_matches_brute_force(seed, D):
    g = uniform_weights(gnp_digraph(7, 0.35, rng=seed), (1, 8), (1, 8), rng=seed + 1)
    got = rsp_exact(g, 0, 6, D)
    expected = brute_force_rsp(g, 0, 6, D)
    if expected is None:
        assert got is None
    else:
        assert got is not None
        cost, path = got
        assert cost == expected[0]
        assert is_path(g, path, 0, 6)
        assert g.cost_of(path) == cost and g.delay_of(path) <= D


class TestFptas:
    def test_exact_when_min_cost_feasible(self, diamond):
        g, ids = diamond
        assert rsp_fptas(g, ids["s"], ids["t"], 20, 0.5)[0] == 2

    def test_infeasible(self, diamond):
        g, ids = diamond
        assert rsp_fptas(g, ids["s"], ids["t"], 1, 0.5) is None

    def test_eps_validation(self, diamond):
        g, ids = diamond
        with pytest.raises(Exception):
            rsp_fptas(g, ids["s"], ids["t"], 5, 0.0)

    @pytest.mark.parametrize("eps", [1.0, 0.5, 0.1])
    def test_ratio_guarantee_random(self, eps):
        for seed in range(25):
            g = uniform_weights(
                gnp_digraph(9, 0.3, rng=seed), (1, 30), (1, 30), rng=seed + 100
            )
            D = 35
            exact = rsp_exact(g, 0, 8, D)
            approx = rsp_fptas(g, 0, 8, D, eps)
            assert (exact is None) == (approx is None)
            if exact is not None:
                cost_a, path = approx
                assert g.delay_of(path) <= D  # strict feasibility
                assert cost_a <= (1 + eps) * exact[0] + 1e-9


class TestLarac:
    def test_optimal_when_min_cost_feasible(self, diamond):
        g, ids = diamond
        res = larac(g, ids["s"], ids["t"], 20)
        assert res.cost == 2 and res.lower_bound == 2

    def test_feasible_and_bounded(self, diamond):
        g, ids = diamond
        res = larac(g, ids["s"], ids["t"], 2)
        assert res.delay <= 2
        assert res.lower_bound <= res.cost

    def test_infeasible_returns_none(self, diamond):
        g, ids = diamond
        assert larac(g, ids["s"], ids["t"], 1) is None

    def test_s_equals_t(self, diamond):
        g, ids = diamond
        res = larac(g, ids["s"], ids["s"], 0)
        assert res.cost == 0 and res.path == []

    def test_lower_bound_below_opt_random(self):
        for seed in range(30):
            g = uniform_weights(
                gnp_digraph(9, 0.3, rng=seed), (1, 20), (1, 20), rng=seed + 7
            )
            D = 25
            exact = rsp_exact(g, 0, 8, D)
            res = larac(g, 0, 8, D)
            assert (exact is None) == (res is None)
            if exact is not None:
                assert res.delay <= D
                assert res.lower_bound <= exact[0] <= res.cost
