"""Tests for Karp's minimum mean cycle against brute-force enumeration."""

import itertools
from fractions import Fraction

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph import DiGraph, from_edges, gnp_digraph, to_networkx
from repro.graph.validate import is_cycle
from repro.paths.karp_mmc import minimum_mean_cycle


def brute_force_mmc(g, w):
    nxg = to_networkx(g)
    best = None
    for node_cycle in nx.simple_cycles(nxg):
        hops = list(zip(node_cycle, node_cycle[1:] + [node_cycle[0]]))
        options = []
        ok = True
        for a, b in hops:
            if not nxg.has_edge(a, b):
                ok = False
                break
            options.append([d["eid"] for d in nxg[a][b].values()])
        if not ok:
            continue
        for combo in itertools.product(*options):
            mean = Fraction(int(w[list(combo)].sum()), len(combo))
            if best is None or mean < best:
                best = mean
    return best


class TestBasics:
    def test_single_cycle(self):
        g, ids = from_edges([("a", "b", 3, 0), ("b", "a", 5, 0)])
        mean, cyc = minimum_mean_cycle(g)
        assert mean == Fraction(8, 2) == 4
        assert sorted(cyc) == [0, 1]

    def test_picks_cheaper_of_two(self):
        g, ids = from_edges(
            [
                ("a", "b", 1, 0), ("b", "a", 1, 0),      # mean 1
                ("c", "d", 1, 0), ("d", "c", 5, 0),      # mean 3
            ]
        )
        mean, cyc = minimum_mean_cycle(g)
        assert mean == 1 and sorted(cyc) == [0, 1]

    def test_negative_weights(self):
        g, ids = from_edges([("a", "b", -4, 0), ("b", "a", 1, 0)])
        mean, cyc = minimum_mean_cycle(g)
        assert mean == Fraction(-3, 2)

    def test_self_loop(self):
        g, ids = from_edges([("a", "a", -7, 0), ("a", "b", 0, 0), ("b", "a", 0, 0)])
        mean, cyc = minimum_mean_cycle(g)
        assert mean == -7 and cyc == [0]

    def test_acyclic_none(self):
        g, ids = from_edges([("a", "b", 1, 0), ("b", "c", 1, 0)])
        assert minimum_mean_cycle(g) is None

    def test_empty(self):
        assert minimum_mean_cycle(DiGraph.empty(4)) is None

    def test_disconnected_components(self):
        # The better cycle is unreachable from vertex 0's component.
        g, ids = from_edges(
            [("a", "b", 9, 0), ("b", "a", 9, 0), ("x", "y", 1, 0), ("y", "x", 1, 0)]
        )
        mean, _ = minimum_mean_cycle(g)
        assert mean == 1

    def test_weight_override_and_validation(self):
        g, ids = from_edges([("a", "b", 1, 7), ("b", "a", 1, 9)])
        mean, _ = minimum_mean_cycle(g, weight=g.delay)
        assert mean == 8
        with pytest.raises(GraphError):
            minimum_mean_cycle(g, weight=np.zeros(5, dtype=np.int64))


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 100_000))
def test_matches_brute_force(seed):
    rng = np.random.default_rng(seed)
    g = gnp_digraph(7, 0.35, rng=int(rng.integers(1 << 30)))
    w = rng.integers(-5, 10, size=g.m).astype(np.int64)
    g = g.with_weights(w, np.zeros(g.m, dtype=np.int64))
    expected = brute_force_mmc(g, w)
    got = minimum_mean_cycle(g, weight=w)
    if expected is None:
        assert got is None
    else:
        mean, cyc = got
        assert mean == expected
        assert is_cycle(g, cyc)
        assert Fraction(int(w[np.asarray(cyc)].sum()), len(cyc)) == mean
