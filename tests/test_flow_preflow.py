"""Cross-check tests: push-relabel vs BFS augmenting-path max-flow."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.flow import decompose_flow, max_flow_value
from repro.flow.preflow import preflow_max_flow
from repro.graph import from_edges, gnp_digraph, parallel_chains
from repro.graph.validate import check_disjoint_paths, degree_imbalance


class TestBasics:
    def test_parallel_chains(self):
        for k in (1, 3):
            g, s, t = parallel_chains(k, 3)
            value, used = preflow_max_flow(g, s, t)
            assert value == k

    def test_bottleneck(self):
        g, ids = from_edges(
            [
                ("s", "a", 1, 1),
                ("s", "b", 1, 1),
                ("a", "m", 1, 1),
                ("b", "m", 1, 1),
                ("m", "t", 1, 1),
            ]
        )
        value, _ = preflow_max_flow(g, ids["s"], ids["t"])
        assert value == 1

    def test_disconnected(self):
        g, ids = from_edges([("a", "b", 1, 1)], nodes=["a", "b", "z"])
        value, used = preflow_max_flow(g, ids["a"], ids["z"])
        assert value == 0

    def test_s_eq_t_rejected(self):
        g, s, t = parallel_chains(1, 1)
        with pytest.raises(GraphError):
            preflow_max_flow(g, s, s)

    def test_flow_mask_is_valid_flow(self):
        g, ids = from_edges(
            [
                ("s", "a", 1, 1),
                ("a", "b", 1, 1),
                ("b", "t", 1, 1),
                ("s", "b", 1, 1),
                ("a", "t", 1, 1),
            ]
        )
        value, used = preflow_max_flow(g, ids["s"], ids["t"])
        assert value == 2
        bal = degree_imbalance(g, np.nonzero(used)[0])
        assert bal[ids["s"]] == value and bal[ids["t"]] == -value
        paths, cycles = decompose_flow(
            g, np.nonzero(used)[0], ids["s"], ids["t"]
        )
        assert len(paths) == value
        check_disjoint_paths(g, paths, ids["s"], ids["t"])


@settings(deadline=None, max_examples=60)
@given(st.integers(0, 200_000))
def test_matches_bfs_maxflow(seed):
    g = gnp_digraph(11, 0.3, rng=seed)
    s, t = 0, g.n - 1
    expected = max_flow_value(g, s, t)
    value, used = preflow_max_flow(g, s, t)
    assert value == expected
    # The returned mask is always a valid integral flow of that value.
    bal = degree_imbalance(g, np.nonzero(used)[0])
    assert bal[s] == value and bal[t] == -value
    inner = np.delete(bal, [s, t])
    assert (inner == 0).all()
