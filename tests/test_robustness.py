"""Tests for the robustness layer: budgets, anytime solving, fallback chain.

The load-bearing property (ISSUE satellite 5): *any* budget — including a
deadline of (approximately) zero — still yields k edge-disjoint s-t paths
that pass the independent auditor, and an untripped budget changes nothing
(bit-identical paths to the unbudgeted solve).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import solve_krsp
from repro.core.verify import verify_solution
from repro.errors import (
    BudgetExhaustedError,
    InfeasibleInstanceError,
    IterationLimitError,
    ReproError,
)
from repro.eval.workloads import er_anticorrelated, grid_anticorrelated
from repro.oracle.faults import FaultPlan, FaultSpec, InjectedFault
from repro.robustness import (
    STATUS_BUDGET_EXHAUSTED,
    STATUS_OK,
    STATUSES,
    BudgetMeter,
    SolveBudget,
    checkpoint,
    current_meter,
    make_certificate,
    metered,
    solve_with_fallback,
)


def _instances(count=3):
    out = list(er_anticorrelated(n=12, n_instances=count, seed=5))
    out += list(grid_anticorrelated(rows=3, cols=4, n_instances=count, seed=6))
    return out[: count * 2]


class TestSolveBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            SolveBudget(deadline_seconds=-1)
        with pytest.raises(ValueError):
            SolveBudget(max_iterations=-1)
        with pytest.raises(ValueError):
            SolveBudget(max_search_nodes=-1)

    def test_unlimited(self):
        assert SolveBudget().unlimited
        assert not SolveBudget(max_iterations=3).unlimited

    def test_sliced(self):
        b = SolveBudget(deadline_seconds=8.0, max_iterations=5)
        half = b.sliced(0.5)
        assert half.deadline_seconds == 4.0 and half.max_iterations == 5
        assert SolveBudget(max_iterations=5).sliced(0.5).deadline_seconds is None

    def test_meter_iteration_cap_trips_and_sticks(self):
        meter = SolveBudget(max_iterations=2).start()
        meter.charge_iteration()
        with pytest.raises(BudgetExhaustedError) as exc_info:
            meter.charge_iteration()
        assert exc_info.value.reason == "iterations"
        assert meter.exhausted_reason == "iterations"
        # Sticky: later checks keep raising even if limits would now pass.
        with pytest.raises(BudgetExhaustedError):
            meter.check("later")

    def test_meter_zero_deadline_trips(self):
        meter = SolveBudget(deadline_seconds=0.0).start()
        with pytest.raises(BudgetExhaustedError) as exc_info:
            meter.check("now")
        assert exc_info.value.reason == "deadline"

    def test_meter_search_node_cap(self):
        meter = SolveBudget(max_search_nodes=10).start()
        meter.charge_search_nodes(9)
        with pytest.raises(BudgetExhaustedError) as exc_info:
            meter.charge_search_nodes(5)
        assert exc_info.value.reason == "search_nodes"

    def test_usage_snapshot(self):
        meter = SolveBudget(max_iterations=10).start()
        meter.charge_iteration()
        u = meter.usage()
        assert u["iterations_used"] == 1
        assert u["exhausted_reason"] is None

    def test_ambient_checkpoint(self):
        checkpoint("free")  # no meter armed: must be a no-op
        assert current_meter() is None
        meter = SolveBudget(deadline_seconds=0.0).start()
        with metered(meter):
            assert current_meter() is meter
            with pytest.raises(BudgetExhaustedError):
                checkpoint("inside")
        assert current_meter() is None


class TestCertificate:
    def test_make_certificate_fields(self):
        cert = make_certificate(
            cost=10, delay=7, delay_bound=9, lower_bound=5,
            exhausted_reason="deadline",
            usage={"elapsed_seconds": 0.5, "iterations_used": 3,
                   "search_nodes_used": 100, "exhausted_reason": "deadline"},
        )
        assert cert.delay_slack == 2
        assert cert.cost_bound_gap == 5
        assert cert.cost_bound_ratio == 2.0
        assert cert.exhausted_reason == "deadline"
        assert cert.as_dict()["iterations_used"] == 3

    def test_no_lower_bound(self):
        cert = make_certificate(cost=10, delay=12, delay_bound=9, lower_bound=None)
        assert cert.delay_slack == -3
        assert cert.cost_bound_ratio is None


class TestAnytimeSolve:
    @settings(deadline=None, max_examples=12)
    @given(
        st.sampled_from(_instances()),
        st.sampled_from(
            [
                SolveBudget(deadline_seconds=0.0),
                SolveBudget(deadline_seconds=1e-9),
                SolveBudget(max_iterations=0),
                SolveBudget(max_search_nodes=1),
                SolveBudget(deadline_seconds=0.0, max_iterations=0),
            ]
        ),
    )
    def test_any_budget_returns_verifiable_paths(self, inst, budget):
        """Satellite 5: exhausted budgets still answer, and the answer is
        independently auditable — k edge-disjoint s-t paths, in budget."""
        sol = solve_krsp(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound, budget=budget
        )
        assert sol.status in STATUSES
        report = verify_solution(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound, sol.paths
        )
        assert report.valid, report.issues
        # The feasibility gate's min-delay k-flow is mandatory pre-budget
        # work, so even a zero deadline has a delay-feasible floor.
        assert report.delay_feasible

    def test_zero_deadline_reports_exhaustion(self):
        inst = _instances()[0]
        sol = solve_krsp(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
            budget=SolveBudget(deadline_seconds=0.0),
        )
        assert sol.status == STATUS_BUDGET_EXHAUSTED
        assert sol.certificate is not None
        assert sol.certificate.exhausted_reason == "deadline"

    def test_untripped_budget_is_bit_identical(self):
        for inst in _instances():
            base = solve_krsp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
            budgeted = solve_krsp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
                budget=SolveBudget(deadline_seconds=3600.0, max_iterations=10**9),
            )
            assert budgeted.status == STATUS_OK
            assert budgeted.paths == base.paths
            assert (budgeted.cost, budgeted.delay) == (base.cost, base.delay)

    def test_untripped_budget_is_bit_identical_on_corpus(self):
        """Satellite 5 on the seeded oracle corpus: a generous budget never
        perturbs the answer on the replayed regression instances either."""
        import pathlib

        from repro.oracle import load_corpus

        corpus_dir = pathlib.Path(__file__).parent / "corpus"
        entries = list(load_corpus(corpus_dir))
        assert entries, "seeded corpus missing"
        budget = SolveBudget(deadline_seconds=3600.0, max_iterations=10**9)
        for entry in entries:
            inst = entry.instance
            try:
                base = solve_krsp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
            except InfeasibleInstanceError:
                with pytest.raises(InfeasibleInstanceError):
                    solve_krsp(
                        inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
                        budget=budget,
                    )
                continue
            budgeted = solve_krsp(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound, budget=budget
            )
            assert budgeted.status == STATUS_OK, entry.name
            assert budgeted.paths == base.paths, entry.name
            assert (budgeted.cost, budgeted.delay) == (base.cost, base.delay)

    def test_no_budget_keeps_legacy_raise(self):
        # Without a budget the pre-anytime contract stands: an exhausted
        # iteration cap raises instead of degrading.
        for inst in _instances(4):
            base = solve_krsp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
            if base.iterations == 0:
                continue
            with pytest.raises(IterationLimitError):
                solve_krsp(
                    inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
                    max_iterations=0,
                )
            return
        pytest.skip("no instance in the sample needed cancellation")

    def test_infeasible_still_raises_under_budget(self):
        # Budgets never mask infeasibility: the gate runs before the meter.
        import numpy as np

        from repro.eval.workloads import WorkloadInstance
        from repro.graph import parallel_chains

        g, s, t = parallel_chains(2, 2)
        g = g.with_weights(np.ones(g.m, np.int64), np.full(g.m, 9, np.int64))
        with pytest.raises(InfeasibleInstanceError):
            solve_krsp(g, s, t, 2, 10, budget=SolveBudget(deadline_seconds=0.0))


class TestFallbackChain:
    def test_healthy_chain_uses_bicameral(self):
        inst = _instances()[0]
        res = solve_with_fallback(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
            deadline_seconds=30.0,
        )
        assert res.tier == "bicameral"
        assert res.status == STATUS_OK
        assert res.solution is not None
        report = verify_solution(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound, res.paths
        )
        assert report.clean, report.issues

    def test_fault_in_bicameral_degrades_to_lp_rounding(self):
        inst = _instances()[0]
        calls = []

        def hook(point):
            calls.append(point)
            if point.startswith("bicameral"):
                raise InjectedFault("boom")

        res = solve_with_fallback(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
            deadline_seconds=30.0, fault_hook=hook,
        )
        assert res.tier == "lp_rounding_2_2"
        assert res.status != STATUS_OK
        # Both bicameral attempts (retry policy), then the next tier.
        assert calls[:2] == ["bicameral.attempt1", "bicameral.attempt2"]
        assert res.tiers[0].outcome == "error" and res.tiers[0].attempts == 2
        report = verify_solution(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound, res.paths
        )
        assert report.valid, report.issues

    def test_transient_fault_retried_within_tier(self):
        inst = _instances()[0]
        plan = FaultPlan(
            by_seed={inst.seed: FaultSpec(kind="raise", at="bicameral",
                                          attempts=(1,))}
        )
        res = solve_with_fallback(
            inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
            fault_hook=plan.hook(inst.seed),
        )
        assert res.tier == "bicameral" and res.status == STATUS_OK
        assert res.tiers[0].attempts == 2

    def test_all_tiers_faulting_raises(self):
        inst = _instances()[0]

        def hook(point):
            raise InjectedFault("everything is broken")

        with pytest.raises(ReproError):
            solve_with_fallback(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound,
                fault_hook=hook,
            )

    def test_authoritative_infeasibility_stops_chain(self):
        import numpy as np

        from repro.graph import parallel_chains

        g, s, t = parallel_chains(2, 2)
        g = g.with_weights(np.ones(g.m, np.int64), np.full(g.m, 9, np.int64))
        with pytest.raises(InfeasibleInstanceError):
            solve_with_fallback(g, s, t, 2, 10)


class TestCliExitCodes:
    """Satellite 4: 0 = solved, 2 = proven infeasible, 1 = solve failed."""

    @staticmethod
    def _write_instance(tmp_path, feasible=True):
        import json

        import numpy as np

        from repro.graph import parallel_chains
        from repro.graph.io import instance_to_dict

        if feasible:
            inst = _instances()[0]
            d = instance_to_dict(
                inst.graph, inst.s, inst.t, inst.k, inst.delay_bound
            )
        else:
            g, s, t = parallel_chains(2, 2)
            g = g.with_weights(np.ones(g.m, np.int64), np.full(g.m, 9, np.int64))
            d = instance_to_dict(g, s, t, 2, 10)
        path = tmp_path / ("ok.json" if feasible else "infeasible.json")
        path.write_text(json.dumps(d))
        return path

    def test_solved_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["solve", str(self._write_instance(tmp_path))]) == 0
        assert "status=ok" in capsys.readouterr().out

    def test_infeasible_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["solve", str(self._write_instance(tmp_path, feasible=False))])
        assert rc == 2
        assert "infeasible" in capsys.readouterr().err

    def test_solver_failure_exits_one(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli
        from repro.errors import SolverError

        def boom(*args, **kwargs):
            raise SolverError("LP melted down")

        monkeypatch.setattr(cli, "solve_krsp", boom)
        rc = cli.main(["solve", str(self._write_instance(tmp_path))])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_deadline_flag_prints_certificate(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            ["solve", str(self._write_instance(tmp_path)), "--deadline", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "status=budget_exhausted" in out
        assert "certificate:" in out and "reason=deadline" in out

    def test_fallback_flag(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            ["solve", str(self._write_instance(tmp_path)),
             "--fallback", "--deadline", "30"]
        )
        assert rc == 0
        assert "tier=bicameral" in capsys.readouterr().out
