"""Tests for the metrics export pipeline (PR 7).

Covers the latency-histogram primitive, the Prometheus text-format
renderer and its strict parser (round-trip), the push-aggregating
`/metrics` server, the collapsed-stack flamegraph export and its
self-time invariant, trace diffing, and the CLI surface that ties them
together (``repro trace --diff/--flamegraph``, ``repro metrics``,
garbage-input hardening, trace labels).
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.krsp import solve_krsp
from repro.errors import InputError
from repro.eval.experiments import figure1_instance
from repro.graph.io import instance_to_dict
from repro.obs.diff import diff_traces, format_drift_block, rank_counter_drift
from repro.obs.flamegraph import fold_trace
from repro.obs.hist import BUCKET_BOUNDS, N_BUCKETS, Histogram, validate_histogram
from repro.obs.promtext import (
    metric_name,
    parse_prometheus,
    render_prometheus,
    render_session,
)
from repro.obs.report import Trace, load_trace, validate_trace
from repro.obs.server import (
    PUSH_SCHEMA,
    MetricsServer,
    attach_metrics,
    push_snapshot,
    snapshot_session,
)
from repro.oracle.fuzzer import instance_stream


@pytest.fixture
def fig1():
    g, ids = figure1_instance(6, 10)
    return g, ids["s"], ids["t"], 2, 6


def solve_trace(fig1, tmp_path, name, phase1="minsum"):
    """Solve the Figure-1 gadget under a traced session; return the path."""
    g, s, t, k, bound = fig1
    path = tmp_path / name
    with obs.session(trace_path=path, label=f"test {name}"):
        solve_krsp(g, s, t, k, bound, phase1=phase1)
    return path


class TestHistogram:
    def test_bucket_ladder_shape(self):
        assert len(BUCKET_BOUNDS) == 25
        assert N_BUCKETS == 26
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-6)
        assert BUCKET_BOUNDS[-1] == pytest.approx(100.0)
        # Log-spaced: three buckets per decade.
        for lo, hi in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert hi / lo == pytest.approx(10 ** (1 / 3))

    def test_observe_places_values_in_buckets(self):
        h = Histogram()
        h.observe(1e-9)     # below the ladder -> first bucket
        h.observe(5e-3)
        h.observe(1e9)      # beyond the ladder -> overflow bucket
        assert h.count == 3
        assert h.sum == pytest.approx(1e-9 + 5e-3 + 1e9)
        assert h.counts[0] == 1
        assert h.counts[-1] == 1
        assert sum(h.counts) == 3

    def test_percentiles_interpolate_and_degrade(self):
        h = Histogram()
        assert h.percentile(0.5) == 0.0  # empty
        for _ in range(100):
            h.observe(2e-3)
        p50 = h.percentile(0.5)
        # All mass in one bucket: the quantile lands inside that bucket.
        lo_idx = next(i for i, c in enumerate(h.counts) if c)
        lo = BUCKET_BOUNDS[lo_idx - 1] if lo_idx else 0.0
        assert lo <= p50 <= BUCKET_BOUNDS[lo_idx]
        assert h.percentile(0.99) >= p50
        h2 = Histogram()
        h2.observe(1e9)
        assert h2.percentile(0.5) == BUCKET_BOUNDS[-1]  # overflow clamps

    def test_merge_matches_joint_observation(self):
        values_a = [1e-5, 3e-4, 0.2, 50.0]
        values_b = [2e-6, 0.2, 7.0, 1e4]
        a, b, joint = Histogram(), Histogram(), Histogram()
        for v in values_a:
            a.observe(v)
            joint.observe(v)
        for v in values_b:
            b.observe(v)
            joint.observe(v)
        a.merge(b)
        assert a.counts == joint.counts
        assert a.count == joint.count
        assert a.sum == pytest.approx(joint.sum)
        # Merging the as_dict form works too (the server's path).
        c = Histogram()
        c.merge(joint.as_dict())
        assert c.counts == joint.counts

    def test_dict_round_trip_and_validation(self):
        h = Histogram()
        h.observe(0.01)
        d = h.as_dict()
        assert validate_histogram("x", d) == []
        assert Histogram.from_dict(d).as_dict() == d
        assert validate_histogram("x", {"counts": [0], "sum": 0, "count": 0})
        bad = dict(d, count=99)
        assert any("count" in p for p in validate_histogram("x", bad))
        assert validate_histogram("x", "not a dict")

    def test_session_records_span_histograms(self):
        with obs.session() as tel:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            with obs.span("outer"):
                pass
            obs.observe("custom.latency", 0.25)
        assert tel.histograms["outer"].count == 2
        assert tel.histograms["inner"].count == 1
        assert tel.histograms["custom.latency"].count == 1
        # Module-level observe is a no-op when disabled.
        obs.observe("dead", 1.0)
        assert obs.snapshot() == {}

    def test_solve_level_latency_recorded(self, fig1):
        g, s, t, k, bound = fig1
        with obs.session() as tel:
            solve_krsp(g, s, t, k, bound, phase1="minsum")
            solve_krsp(g, s, t, k, bound, phase1="minsum")
        assert tel.histograms["krsp.solve"].count == 2
        assert tel.histograms["krsp.solve"].sum > 0.0


class TestPrometheusRoundTrip:
    def test_metric_name_sanitization(self):
        assert metric_name("search.aux_cache.hit", suffix="_total") == \
            "repro_search_aux_cache_hit_total"
        assert metric_name("krsp.solve", suffix="_seconds") == \
            "repro_krsp_solve_seconds"

    def test_render_parse_round_trip(self):
        h = Histogram()
        for v in (1e-5, 2e-3, 2e-3, 0.5, 1e9):
            h.observe(v)
        text = render_prometheus(
            {"krsp.solves": 3, "lp.pivots": 120},
            {"krsp.cost": 45.0},
            {"krsp.solve": h},
        )
        families = parse_prometheus(text)
        assert families["repro_krsp_solves_total"].type == "counter"
        assert families["repro_krsp_solves_total"].samples[0][2] == 3
        assert families["repro_krsp_cost"].type == "gauge"
        fam = families["repro_krsp_solve_seconds"]
        assert fam.type == "histogram"
        buckets = [(ls, v) for n, ls, v in fam.samples
                   if n == "repro_krsp_solve_seconds_bucket"]
        assert len(buckets) == N_BUCKETS  # 25 bounds + +Inf
        assert buckets[-1][0]["le"] == "+Inf" and buckets[-1][1] == 5
        counts = [v for _, v in buckets]
        assert counts == sorted(counts)  # cumulative
        (sum_v,) = [v for n, _, v in fam.samples
                    if n == "repro_krsp_solve_seconds_sum"]
        assert sum_v == pytest.approx(h.sum)

    def test_render_session_covers_live_telemetry(self, fig1):
        g, s, t, k, bound = fig1
        with obs.session() as tel:
            solve_krsp(g, s, t, k, bound, phase1="minsum")
        families = parse_prometheus(render_session(tel))
        assert families["repro_krsp_solves_total"].samples[0][2] == 1
        assert families["repro_krsp_solve_seconds"].type == "histogram"

    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("repro_x{ 1\n", "malformed sample"),
            ('repro_x{le=nope} 1\n', "malformed labels"),
            ("repro_x 1\n# TYPE repro_x counter\n", "after samples"),
            ("# TYPE repro_h histogram\nrepro_h_sum 1\nrepro_h_count 1\n",
             "no _bucket"),
            ('# TYPE repro_h histogram\nrepro_h_bucket{le="1"} 2\n'
             'repro_h_bucket{le="+Inf"} 1\nrepro_h_sum 1\nrepro_h_count 1\n',
             "not cumulative"),
            ('# TYPE repro_h histogram\nrepro_h_bucket{le="1"} 1\n'
             "repro_h_sum 1\nrepro_h_count 1\n", "+Inf"),
            ('# TYPE repro_h histogram\nrepro_h_bucket{le="+Inf"} 2\n'
             "repro_h_sum 1\nrepro_h_count 1\n", "_count 1"),
        ],
    )
    def test_parser_rejects_malformed_pages(self, text, fragment):
        with pytest.raises(InputError) as exc_info:
            parse_prometheus(text)
        assert fragment in str(exc_info.value)


class TestMetricsServer:
    def _scrape(self, url):
        with urllib.request.urlopen(url + "/metrics", timeout=5.0) as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            return resp.read().decode("utf-8")

    def test_push_merge_scrape_and_health(self):
        srv = MetricsServer(0)
        try:
            h = Histogram()
            h.observe(0.01)
            snap = {
                "schema": PUSH_SCHEMA,
                "label": "solve a",
                "counters": {"krsp.solves": 2, "lp.pivots": 10},
                "gauges": {"krsp.cost": 45.0},
                "histograms": {"krsp.solve": h.as_dict()},
            }
            push_snapshot(srv.url, snap)
            push_snapshot(srv.url, dict(snap, label="solve b",
                                        counters={"krsp.solves": 3},
                                        gauges={}))
            families = parse_prometheus(self._scrape(srv.url))
            # Counters summed across sources; histogram present once.
            assert families["repro_krsp_solves_total"].samples[0][2] == 5
            assert families["repro_krsp_solve_seconds"].type == "histogram"
            # Two sources -> gauges are exported per-source-labeled.
            gauge_samples = families["repro_krsp_cost"].samples
            assert {ls.get("source") for _, ls, _ in gauge_samples} == {"solve a"}
            # Meta-metrics.
            assert families["repro_metrics_sources"].samples[0][2] == 2
            pushes = {ls["source"]: v for _, ls, v in
                      families["repro_metrics_pushes_total"].samples}
            assert pushes == {"solve a": 1, "solve b": 1}
            with urllib.request.urlopen(srv.url + "/healthz", timeout=5.0) as r:
                health = json.load(r)
            assert health["status"] == "ok" and health["sources"] == 2
            assert set(health["push_age_seconds"]) == {"solve a", "solve b"}
        finally:
            srv.close()

    def test_push_rejects_garbage(self):
        srv = MetricsServer(0)
        try:
            for payload in (
                b"not json",
                json.dumps({"schema": 999}).encode(),
                json.dumps({"schema": PUSH_SCHEMA, "label": "x",
                            "histograms": {"h": {"counts": [1], "sum": 0,
                                                 "count": 1}}}).encode(),
            ):
                req = urllib.request.Request(
                    srv.url + "/push", data=payload, method="POST"
                )
                with pytest.raises(urllib.error.HTTPError) as exc_info:
                    urllib.request.urlopen(req, timeout=5.0)
                assert exc_info.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(srv.url + "/nope", timeout=5.0)
            assert exc_info.value.code == 404
        finally:
            srv.close()

    def test_attach_reuses_running_aggregator(self):
        srv = MetricsServer(0)
        try:
            with obs.session(label="attached") as tel:
                obs.inc("attach.test")
                publisher, owned = attach_metrics(
                    srv.port, tel, "attached", interval=30.0
                )
                assert owned is None  # joined srv instead of starting one
                publisher.close()  # final push flushes the session state
            families = parse_prometheus(self._scrape(srv.url))
            assert families["repro_attach_test_total"].samples[0][2] == 1
        finally:
            srv.close()

    def test_publisher_heartbeats_are_session_scoped(self, fig1):
        g, s, t, k, bound = fig1
        srv = MetricsServer(0)
        try:
            with obs.session(label="hb") as outer:
                publisher, _ = attach_metrics(srv.port, outer, "hb",
                                              interval=0.05)
                sol = solve_krsp(g, s, t, k, bound, phase1="minsum")
                import time as _time

                _time.sleep(0.2)
                publisher.close()
            beats = [e for e in outer.events
                     if e["kind"] == "metrics.heartbeat"]
            assert beats, "publisher never heartbeat"
            assert outer.counters["metrics.heartbeats"] == len(beats)
            # The nested per-solve session stays heartbeat-free: its
            # counters (and event trail) remain deterministic.
            assert "metrics.heartbeats" not in sol.counters
            # Events in trace_lines stay seq-sorted despite the
            # publisher thread appending concurrently.
            trace = Trace.from_session(outer)
            assert validate_trace(trace) == []
        finally:
            srv.close()


class TestFlamegraph:
    def test_fold_invariant_over_seeded_solves(self):
        checked = 0
        for inst in instance_stream(11, substrates=["er"]):
            if checked >= 2:
                break
            with obs.session() as tel:
                try:
                    solve_krsp(inst.graph, inst.s, inst.t, inst.k,
                               inst.delay_bound)
                except Exception:
                    continue
            folded = fold_trace(Trace.from_session(tel))
            assert folded.total_ns == folded.root_total_ns
            assert folded.span_count == len(tel.spans)
            for line in folded.lines:
                path, ns = line.rsplit(" ", 1)
                assert int(ns) > 0 and path
            checked += 1
        assert checked == 2

    def test_fold_caps_rounding_jitter(self):
        # A child claiming more time than its parent (rounding jitter,
        # here exaggerated) is capped; the invariant still holds exactly.
        trace = Trace(spans=[
            {"id": 1, "parent": None, "seq": 1, "name": "root", "dur": 1e-6},
            {"id": 2, "parent": 1, "seq": 2, "name": "kid", "dur": 2e-6},
        ])
        folded = fold_trace(trace)
        assert folded.total_ns == folded.root_total_ns == 1000
        assert folded.capped_ns == 1000
        assert folded.lines == ["root;kid 1000"]

    def test_sibling_paths_aggregate(self):
        trace = Trace(spans=[
            {"id": 1, "parent": None, "seq": 1, "name": "a", "dur": 10e-6},
            {"id": 2, "parent": 1, "seq": 2, "name": "b", "dur": 2e-6},
            {"id": 3, "parent": 1, "seq": 3, "name": "b", "dur": 3e-6},
        ])
        folded = fold_trace(trace)
        assert set(folded.lines) == {"a 5000", "a;b 5000"}
        assert folded.total_ns == 10_000


class TestTraceDiff:
    def test_identical_seeds_diff_empty(self, fig1, tmp_path):
        a = load_trace(solve_trace(fig1, tmp_path, "a.jsonl"))
        b = load_trace(solve_trace(fig1, tmp_path, "b.jsonl"))
        d = diff_traces(a, b)
        assert d.counters_identical
        assert d.counters == []
        assert format_drift_block(d.counters) == ["  (counters identical)"]

    def test_drift_ranked_by_contribution(self):
        drifts = rank_counter_drift(
            {"lp.pivots": 100, "dijkstra.pops": 50, "same": 7},
            {"lp.pivots": 160, "dijkstra.pops": 30, "same": 7, "new.counter": 20},
        )
        assert [d.name for d in drifts] == \
            ["lp.pivots", "dijkstra.pops", "new.counter"]
        assert drifts[0].delta == 60 and drifts[0].rel == pytest.approx(0.6)
        assert drifts[2].rel is None  # new counter: no baseline to relate to
        assert sum(d.share for d in drifts) == pytest.approx(1.0)
        block = format_drift_block(drifts, top=2)
        assert any("1 more counters moved" in line for line in block)


class TestCliPipeline:
    def test_trace_diff_command(self, fig1, tmp_path, capsys):
        a = solve_trace(fig1, tmp_path, "a.jsonl")
        b = solve_trace(fig1, tmp_path, "b.jsonl")
        assert cli_main(["trace", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "behaviourally identical" in out
        assert cli_main(["trace", "--diff", str(a), str(b), "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["counters_identical"] is True
        assert parsed["counter_drift"] == []
        # Positional + --diff is a usage error, not a silent pick.
        assert cli_main(["trace", str(a), "--diff", str(a), str(b)]) == 2
        assert cli_main(["trace"]) == 2

    def test_trace_flamegraph_command(self, fig1, tmp_path, capsys):
        trace_path = solve_trace(fig1, tmp_path, "fg.jsonl")
        out_path = tmp_path / "fg.collapsed"
        assert cli_main(["trace", str(trace_path),
                         "--flamegraph", str(out_path)]) == 0
        assert "self time" in capsys.readouterr().out
        total = 0
        for line in out_path.read_text().splitlines():
            path, ns = line.rsplit(" ", 1)
            assert path and int(ns) > 0
            total += int(ns)
        trace = load_trace(trace_path)
        root_ns = sum(round(s["dur"] * 1e9) for s in trace.spans
                      if s.get("parent") is None)
        assert total == root_ns

    @pytest.mark.parametrize(
        "content, mode",
        [
            (b"", "wb"),                                   # empty
            (b"\x00\x01\x02\xff" * 16, "wb"),              # binary
            (b'{"type": "header", "schema": 2}\n{"type"',  # torn tail
             "wb"),
        ],
    )
    def test_trace_rejects_garbage_with_exit_2(self, tmp_path, capsys,
                                               content, mode):
        bad = tmp_path / "bad.jsonl"
        bad.write_bytes(content)
        assert cli_main(["trace", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "cannot load trace" in err
        assert "Traceback" not in err

    def test_torn_tail_names_the_debris(self, fig1, tmp_path, capsys):
        path = solve_trace(fig1, tmp_path, "torn.jsonl")
        data = path.read_bytes()
        path.write_bytes(data[:-20])  # sever the summary seal mid-line
        assert cli_main(["trace", str(path)]) == 2
        assert "torn trailing record" in capsys.readouterr().err

    def test_metrics_check_command(self, tmp_path, capsys):
        good = tmp_path / "good.txt"
        h = Histogram()
        h.observe(0.5)
        good.write_text(render_prometheus({"c": 1}, {}, {"h": h}))
        assert cli_main(["metrics", "check", str(good)]) == 0
        assert "valid text-format 0.0.4" in capsys.readouterr().out
        bad = tmp_path / "bad.txt"
        bad.write_text("repro_x{ 1\n")
        assert cli_main(["metrics", "check", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err
        assert cli_main(["metrics", "check",
                         str(tmp_path / "missing.txt")]) == 2

    def test_solve_metrics_port_in_process(self, fig1, tmp_path, capsys):
        import socket

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        g, s_, t, k, bound = fig1
        inst_path = tmp_path / "inst.json"
        inst_path.write_text(json.dumps(instance_to_dict(g, s_, t, k, bound)))
        # No aggregator on the port: solve serves in-process and still
        # exits cleanly (endpoint dies with the command).
        assert cli_main(["solve", str(inst_path), "--phase1", "minsum",
                         "--metrics-port", str(port)]) == 0

    def test_sweep_trace_labels_header(self, tmp_path, capsys):
        trace_path = tmp_path / "sweep.jsonl"
        assert cli_main(["sweep", "er_anticorrelated", "--param", "n=8",
                         "--n-instances", "1", "--seed", "3",
                         "--trace", str(trace_path)]) == 0
        trace = load_trace(trace_path)
        assert trace.header["label"] == "sweep er_anticorrelated seed=3"
        assert validate_trace(trace) == []

    def test_fuzz_trace_labels_header(self, tmp_path):
        trace_path = tmp_path / "fuzz.jsonl"
        assert cli_main(["fuzz", "--budget", "0.1", "--max-instances", "1",
                         "--seed", "0", "--no-corpus", "--no-shrink",
                         "--trace", str(trace_path)]) == 0
        trace = load_trace(trace_path)
        assert trace.header["label"] == "fuzz seed=0 budget=0.1s"
