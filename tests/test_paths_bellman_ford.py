"""Tests for Bellman–Ford and negative-cycle extraction."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NegativeCycleError
from repro.graph import DiGraph, from_edges, gnp_digraph, to_networkx, uniform_weights
from repro.graph.validate import is_cycle
from repro.paths import INF, bellman_ford, find_negative_cycle, negative_cycle_value
from repro.paths.dijkstra import dijkstra


class TestShortestPaths:
    def test_agrees_with_dijkstra_on_nonnegative(self):
        g = uniform_weights(gnp_digraph(15, 0.3, rng=7), rng=8)
        d1, _ = dijkstra(g, 0)
        d2, _ = bellman_ford(g, 0)
        assert np.array_equal(d1, d2)

    def test_handles_negative_edges_without_cycles(self):
        g, ids = from_edges(
            [("a", "b", 5, 0), ("b", "c", -3, 0), ("a", "c", 4, 0)]
        )
        dist, _ = bellman_ford(g, ids["a"])
        assert dist[ids["c"]] == 2

    def test_unreachable(self):
        g, ids = from_edges([("a", "b", 1, 0)], nodes=["a", "b", "z"])
        dist, _ = bellman_ford(g, ids["a"])
        assert dist[ids["z"]] == INF

    def test_negative_cycle_raises_with_witness(self):
        g, ids = from_edges(
            [("s", "a", 1, 0), ("a", "b", -5, 0), ("b", "a", 2, 0), ("a", "t", 1, 0)]
        )
        with pytest.raises(NegativeCycleError) as exc:
            bellman_ford(g, ids["s"])
        cyc = exc.value.cycle
        assert cyc is not None and is_cycle(g, cyc)
        assert negative_cycle_value(g, cyc) < 0

    def test_unreachable_negative_cycle_ignored(self):
        # Negative cycle exists but s cannot reach it.
        g, ids = from_edges(
            [("s", "t", 1, 0), ("x", "y", -2, 0), ("y", "x", 1, 0)]
        )
        dist, _ = bellman_ford(g, ids["s"])
        assert dist[ids["t"]] == 1


class TestFindNegativeCycle:
    def test_none_when_absent(self):
        g = uniform_weights(gnp_digraph(12, 0.3, rng=3), rng=4)
        assert find_negative_cycle(g) is None

    def test_finds_isolated_cycle(self):
        g, ids = from_edges(
            [("s", "t", 1, 0), ("x", "y", -2, 0), ("y", "x", 1, 0)]
        )
        cyc = find_negative_cycle(g)
        assert cyc is not None and is_cycle(g, cyc)
        assert negative_cycle_value(g, cyc) < 0

    def test_zero_weight_cycle_not_reported(self):
        g, ids = from_edges([("x", "y", 1, 0), ("y", "x", -1, 0)])
        assert find_negative_cycle(g) is None

    def test_self_loop_negative(self):
        g, ids = from_edges([("x", "x", -1, 0)])
        cyc = find_negative_cycle(g)
        assert cyc == [0]

    def test_alternative_weight(self):
        g, ids = from_edges([("x", "y", 1, -3), ("y", "x", 1, 1)])
        assert find_negative_cycle(g) is None  # cost view positive
        cyc = find_negative_cycle(g, weight=g.delay)
        assert cyc is not None
        assert negative_cycle_value(g, cyc, weight=g.delay) < 0

    def test_empty_graph(self):
        assert find_negative_cycle(DiGraph.empty(3)) is None


def _random_graph_maybe_negative(seed: int, n: int = 10) -> DiGraph:
    rng = np.random.default_rng(seed)
    g = gnp_digraph(n, 0.3, rng=int(rng.integers(1 << 30)))
    cost = rng.integers(-4, 15, size=g.m).astype(np.int64)
    return g.with_weights(cost, np.zeros(g.m, dtype=np.int64))


@settings(deadline=None, max_examples=60)
@given(st.integers(0, 100_000))
def test_detection_matches_networkx(seed):
    """find_negative_cycle agrees with networkx on the existence question,
    and any reported cycle is a genuine negative cycle."""
    g = _random_graph_maybe_negative(seed)
    nxg = to_networkx(g)
    expected = nx.negative_edge_cycle(nxg, weight="cost")
    cyc = find_negative_cycle(g)
    assert (cyc is not None) == expected
    if cyc is not None:
        assert is_cycle(g, cyc)
        assert negative_cycle_value(g, cyc) < 0


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 100_000))
def test_bf_distances_match_networkx_when_no_cycle(seed):
    g = _random_graph_maybe_negative(seed)
    nxg = to_networkx(g)
    if nx.negative_edge_cycle(nxg, weight="cost"):
        return
    dist, pred = bellman_ford(g, 0)
    nx_dist = nx.single_source_bellman_ford_path_length(nxg, 0, weight="cost")
    for v in range(g.n):
        if v in nx_dist:
            assert int(dist[v]) == nx_dist[v]
        else:
            assert dist[v] == INF
