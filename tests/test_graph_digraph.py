"""Tests for the core DiGraph container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphError
from repro.graph import DiGraph, from_edges


def small():
    g, _ = from_edges(
        [("a", "b", 1, 2), ("b", "c", 3, 4), ("a", "c", 5, 6), ("c", "a", 7, 8)]
    )
    return g


class TestConstruction:
    def test_basic_shape(self):
        g = small()
        assert g.n == 3 and g.m == 4
        assert g.tail.dtype == np.int64 and g.cost.dtype == np.int64

    def test_empty(self):
        g = DiGraph.empty(5)
        assert g.n == 5 and g.m == 0
        assert g.total_cost() == 0 and g.total_delay() == 0

    def test_mismatched_arrays_rejected(self):
        z = np.zeros(2, dtype=np.int64)
        with pytest.raises(GraphError):
            DiGraph(3, z, z, z, np.zeros(3, dtype=np.int64))

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(
                2,
                np.array([0]),
                np.array([2]),
                np.array([0]),
                np.array([0]),
            )

    def test_negative_vertex_count_rejected(self):
        z = np.zeros(0, dtype=np.int64)
        with pytest.raises(GraphError):
            DiGraph(-1, z, z, z, z)

    def test_parallel_edges_and_self_loops_allowed(self):
        g, _ = from_edges([("a", "b", 1, 1), ("a", "b", 2, 2), ("a", "a", 3, 3)])
        assert g.m == 3

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(small())


class TestAdjacency:
    def test_out_edges(self):
        g = small()
        # vertex 0 = 'a' has out-edges 0 (a->b) and 2 (a->c)
        assert sorted(g.out_edges(0).tolist()) == [0, 2]
        assert g.out_degree(0) == 2
        assert g.out_degree(1) == 1

    def test_in_edges(self):
        g = small()
        # vertex 2 = 'c' receives edges 1 (b->c) and 2 (a->c)
        assert sorted(g.in_edges(2).tolist()) == [1, 2]
        assert g.in_degree(2) == 2
        assert g.in_degree(0) == 1  # c->a

    def test_csr_cached(self):
        g = small()
        a = g.out_csr()
        b = g.out_csr()
        assert a is b


class TestWeights:
    def test_cost_delay_of(self):
        g = small()
        assert g.cost_of([0, 1]) == 4
        assert g.delay_of([0, 1]) == 6
        assert g.cost_of([]) == 0 and g.delay_of([]) == 0
        assert g.cost_of(np.array([2, 3])) == 12

    def test_totals(self):
        g = small()
        assert g.total_cost() == 1 + 3 + 5 + 7
        assert g.total_delay() == 2 + 4 + 6 + 8

    def test_require_nonnegative(self):
        g = small()
        assert g.require_nonnegative() is g
        bad = g.with_weights(g.cost * -1, g.delay)
        with pytest.raises(GraphError):
            bad.require_nonnegative()
        bad2 = g.with_weights(g.cost, g.delay * -1)
        with pytest.raises(GraphError):
            bad2.require_nonnegative()


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = small()
        h = g.copy()
        h.cost[0] = 99
        assert g.cost[0] == 1
        assert g == small() and h != g

    def test_with_weights_shares_topology(self):
        g = small()
        h = g.with_weights(g.cost * 2, g.delay * 3)
        assert h.n == g.n and h.m == g.m
        assert h.cost_of([0]) == 2 and h.delay_of([0]) == 6

    def test_subgraph_edges_renumbers(self):
        g = small()
        sub = g.subgraph_edges(np.array([1, 3]))
        assert sub.m == 2
        assert int(sub.tail[0]) == 1 and int(sub.head[0]) == 2  # old edge 1
        assert int(sub.cost[1]) == 7  # old edge 3

    def test_edges_iterator(self):
        g = small()
        rows = list(g.edges())
        assert rows[0] == (0, 0, 1, 1, 2)
        assert len(rows) == 4


@given(
    st.integers(1, 12).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=40,
            ),
        )
    )
)
def test_csr_covers_every_edge_exactly_once(case):
    """CSR out/in indices partition edge ids for arbitrary multigraphs."""
    n, pairs = case
    m = len(pairs)
    tail = np.array([p[0] for p in pairs], dtype=np.int64)
    head = np.array([p[1] for p in pairs], dtype=np.int64)
    g = DiGraph(n, tail, head, np.zeros(m, np.int64), np.zeros(m, np.int64))
    seen_out = sorted(e for u in range(n) for e in g.out_edges(u).tolist())
    seen_in = sorted(e for v in range(n) for e in g.in_edges(v).tolist())
    assert seen_out == list(range(m))
    assert seen_in == list(range(m))
    for u in range(n):
        for e in g.out_edges(u):
            assert int(g.tail[e]) == u
    for v in range(n):
        for e in g.in_edges(v):
            assert int(g.head[e]) == v
