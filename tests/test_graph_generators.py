"""Tests for topology generators and weight models."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    anticorrelated_weights,
    correlated_weights,
    euclidean_weights,
    gnp_digraph,
    grid_digraph,
    layered_dag,
    parallel_chains,
    ring_of_cliques,
    uniform_weights,
    waxman_digraph,
)
from repro.graph.validate import degree_imbalance


class TestGnp:
    def test_determinism(self):
        a = gnp_digraph(15, 0.3, rng=11)
        b = gnp_digraph(15, 0.3, rng=11)
        assert a == b

    def test_no_self_loops_or_duplicates(self):
        g = gnp_digraph(20, 0.5, rng=1)
        assert (g.tail != g.head).all()
        pairs = set(zip(g.tail.tolist(), g.head.tolist()))
        assert len(pairs) == g.m

    def test_extreme_probabilities(self):
        assert gnp_digraph(8, 0.0, rng=0).m == 0
        assert gnp_digraph(8, 1.0, rng=0).m == 8 * 7

    def test_bad_probability(self):
        with pytest.raises(GraphError):
            gnp_digraph(5, 1.5)


class TestWaxman:
    def test_positions_shape_and_reproducibility(self):
        g1, pos1 = waxman_digraph(12, rng=3)
        g2, pos2 = waxman_digraph(12, rng=3)
        assert g1 == g2 and np.allclose(pos1, pos2)
        assert pos1.shape == (12, 2)

    def test_alpha_scales_density(self):
        sparse, _ = waxman_digraph(30, alpha=0.1, rng=5)
        dense, _ = waxman_digraph(30, alpha=0.9, rng=5)
        assert dense.m > sparse.m


class TestGrid:
    def test_counts(self):
        g, s, t = grid_digraph(3, 4)
        assert g.n == 12 and s == 0 and t == 11
        # bidirectional grid: 2*(rows*(cols-1) + cols*(rows-1))
        assert g.m == 2 * (3 * 3 + 4 * 2)

    def test_unidirectional(self):
        g, _, _ = grid_digraph(3, 3, bidirectional=False)
        assert g.m == 3 * 2 + 3 * 2

    def test_degenerate(self):
        g, s, t = grid_digraph(1, 1)
        assert g.n == 1 and g.m == 0 and s == t == 0
        with pytest.raises(GraphError):
            grid_digraph(0, 3)


class TestLayeredDag:
    def test_is_dag_and_terminals(self):
        g, s, t = layered_dag(4, 3, rng=7)
        assert s == 0 and t == g.n - 1
        # DAG check: all edges go from lower to higher vertex id by
        # construction (s=0 first, t last, ranks in order).
        assert (g.tail < g.head).all()

    def test_st_connectivity_width(self):
        g, s, t = layered_dag(3, 2, rng=0, extra_skip_prob=0.0)
        assert g.out_degree(s) == 2 and g.in_degree(t) == 2


class TestRingOfCliques:
    def test_terminals_distinct_cliques(self):
        g, s, t = ring_of_cliques(4, 3, rng=1)
        assert s // 3 == 0 and t // 3 == 2
        assert g.n == 12

    def test_chords_add_edges(self):
        g0, _, _ = ring_of_cliques(4, 3, rng=2, chords=0)
        g5, _, _ = ring_of_cliques(4, 3, rng=2, chords=5)
        assert g5.m >= g0.m

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            ring_of_cliques(2, 3)


class TestParallelChains:
    @pytest.mark.parametrize("k,length", [(1, 1), (2, 3), (4, 2), (3, 5)])
    def test_structure(self, k, length):
        g, s, t = parallel_chains(k, length)
        assert g.m == k * length
        bal = degree_imbalance(g, list(range(g.m)))
        assert bal[s] == k and bal[t] == -k
        assert (np.delete(bal, [s, t]) == 0).all()

    def test_length_one_is_parallel_edges(self):
        g, s, t = parallel_chains(3, 1)
        assert g.n == 2 and g.m == 3
        assert (g.tail == s).all() and (g.head == t).all()


class TestWeightModels:
    def _topo(self):
        return gnp_digraph(25, 0.3, rng=9)

    def test_uniform_ranges(self):
        g = uniform_weights(self._topo(), (2, 5), (7, 9), rng=1)
        assert g.cost.min() >= 2 and g.cost.max() <= 5
        assert g.delay.min() >= 7 and g.delay.max() <= 9

    def test_uniform_bad_range(self):
        with pytest.raises(GraphError):
            uniform_weights(self._topo(), (5, 2), (1, 1))

    def test_correlated_positive_correlation(self):
        g = correlated_weights(self._topo(), (1, 50), noise=2, rng=4)
        r = np.corrcoef(g.cost, g.delay)[0, 1]
        assert r > 0.8

    def test_anticorrelated_negative_correlation(self):
        g = anticorrelated_weights(self._topo(), total=40, noise=1, rng=4)
        r = np.corrcoef(g.cost, g.delay)[0, 1]
        assert r < -0.8
        assert (g.cost + g.delay >= 35).all()

    def test_anticorrelated_nonnegative(self):
        g = anticorrelated_weights(self._topo(), total=3, noise=3, rng=4)
        assert g.delay.min() >= 0

    def test_euclidean_requires_positions(self):
        g, pos = waxman_digraph(10, rng=2)
        weighted = euclidean_weights(g, pos, rng=3)
        assert weighted.cost.min() >= 1 and weighted.delay.min() >= 1
        with pytest.raises(GraphError):
            euclidean_weights(g, pos[:5], rng=3)

    def test_all_models_preserve_topology(self):
        g = self._topo()
        for model in (uniform_weights, correlated_weights, anticorrelated_weights):
            w = model(g, rng=0)
            assert np.array_equal(w.tail, g.tail) and np.array_equal(w.head, g.head)
