"""Tests for the independent solution verifier."""

import pytest

from repro.core import solve_krsp, verify_solution
from repro.errors import GraphError, InfeasibleInstanceError
from repro.graph import from_edges, gnp_digraph, anticorrelated_weights


def instance(seed=4):
    g = anticorrelated_weights(gnp_digraph(10, 0.45, rng=seed), rng=seed + 1)
    return g, 0, 9, 2, 45


class TestCleanSolutions:
    def test_solver_output_verifies_clean(self):
        checked = 0
        for seed in range(10):
            g, s, t, k, D = instance(seed)
            try:
                sol = solve_krsp(g, s, t, k, D)
            except InfeasibleInstanceError:
                continue
            rep = verify_solution(g, s, t, k, D, sol.paths, use_milp=True)
            assert rep.clean, rep.issues
            assert rep.cost == sol.cost and rep.delay == sol.delay
            assert rep.approximation_ratio_upper_bound is not None
            assert rep.exact_ratio is not None and rep.exact_ratio <= 2.0 + 1e-9
            checked += 1
        assert checked >= 3

    def test_bounds_optional(self):
        g, s, t, k, D = instance()
        try:
            sol = solve_krsp(g, s, t, k, D)
        except InfeasibleInstanceError:
            pytest.skip("infeasible seed")
        rep = verify_solution(g, s, t, k, D, sol.paths, check_bounds=False)
        assert rep.clean and rep.cost_lower_bound is None


class TestBadSolutions:
    def test_overlapping_paths_flagged(self):
        g, ids = from_edges([("s", "t", 1, 1), ("s", "t", 2, 2)])
        rep = verify_solution(g, ids["s"], ids["t"], 2, 10, [[0], [0]])
        assert not rep.valid
        assert any("structural" in i for i in rep.issues)

    def test_wrong_k_flagged(self):
        g, ids = from_edges([("s", "t", 1, 1), ("s", "t", 2, 2)])
        rep = verify_solution(g, ids["s"], ids["t"], 2, 10, [[0]])
        assert not rep.valid

    def test_budget_violation_flagged(self):
        g, ids = from_edges([("s", "t", 1, 9)])
        rep = verify_solution(g, ids["s"], ids["t"], 1, 5, [[0]])
        assert rep.valid and not rep.delay_feasible
        assert not rep.clean
        assert any("exceeds budget" in i for i in rep.issues)

    def test_negative_weight_instance_rejected(self):
        g, ids = from_edges([("s", "t", -1, 1)])
        with pytest.raises(GraphError):
            verify_solution(g, ids["s"], ids["t"], 1, 5, [[0]])

    def test_not_a_path_flagged(self):
        g, ids = from_edges([("s", "a", 1, 1), ("a", "t", 1, 1)])
        rep = verify_solution(g, ids["s"], ids["t"], 1, 10, [[1, 0]])
        assert not rep.valid


class TestAdversarialClaims:
    """The verifier against a lying solver: every tampered report must be
    flagged with a specific issue, never waved through."""

    def two_route(self):
        g, ids = from_edges(
            [("s", "a", 1, 4), ("a", "t", 1, 4), ("s", "b", 3, 2), ("b", "t", 3, 2)]
        )
        return g, ids["s"], ids["t"]

    def test_honest_claims_are_clean(self):
        g, s, t = self.two_route()
        rep = verify_solution(
            g, s, t, 2, 12, [[0, 1], [2, 3]],
            check_bounds=False, claimed_cost=8, claimed_delay=12,
        )
        assert rep.clean and rep.cost == 8 and rep.delay == 12

    def test_tampered_cost_flagged(self):
        g, s, t = self.two_route()
        rep = verify_solution(
            g, s, t, 2, 12, [[0, 1], [2, 3]],
            check_bounds=False, claimed_cost=5, claimed_delay=12,
        )
        assert rep.valid and not rep.clean
        assert any(
            "claimed cost 5 does not match recomputed cost 8" in i
            for i in rep.issues
        )

    def test_tampered_delay_flagged(self):
        g, s, t = self.two_route()
        rep = verify_solution(
            g, s, t, 2, 12, [[0, 1], [2, 3]],
            check_bounds=False, claimed_cost=8, claimed_delay=3,
        )
        assert not rep.clean
        assert any(
            "claimed delay 3 does not match recomputed delay 12" in i
            for i in rep.issues
        )

    def test_nondisjoint_paths_flagged(self):
        g, s, t = self.two_route()
        rep = verify_solution(g, s, t, 2, 12, [[0, 1], [0, 1]], check_bounds=False)
        assert not rep.valid and not rep.clean
        assert any("structural" in i and "share edge" in i for i in rep.issues)

    def test_empty_path_list_flagged(self):
        g, s, t = self.two_route()
        rep = verify_solution(g, s, t, 2, 12, [], check_bounds=False)
        assert not rep.valid and not rep.clean
        assert any("expected 2 paths, got 0" in i for i in rep.issues)

    def test_empty_inner_path_flagged(self):
        g, s, t = self.two_route()
        rep = verify_solution(g, s, t, 2, 12, [[0, 1], []], check_bounds=False)
        assert not rep.valid and not rep.clean
        assert any("structural" in i for i in rep.issues)

    def test_overbudget_and_tampered_both_reported(self):
        g, s, t = self.two_route()
        # Budget 5 is violated (true delay 12) *and* the totals are forged.
        rep = verify_solution(
            g, s, t, 2, 5, [[0, 1], [2, 3]],
            check_bounds=False, claimed_cost=8, claimed_delay=5,
        )
        assert rep.valid and not rep.delay_feasible and not rep.clean
        assert any("delay 12 exceeds budget 5" in i for i in rep.issues)
        assert any("claimed delay 5" in i for i in rep.issues)


class TestOracleCrossChecks:
    def test_milp_consistency(self):
        g, ids = from_edges(
            [("s", "a", 1, 9), ("a", "t", 1, 9), ("s", "b", 5, 1), ("b", "t", 5, 1)]
        )
        # Optimal at D=2: the pricey pair (cost 10).
        rep = verify_solution(
            g, ids["s"], ids["t"], 1, 2, [[2, 3]], use_milp=True
        )
        assert rep.clean and rep.exact_ratio == 1.0

    def test_suboptimal_but_clean(self):
        g, ids = from_edges(
            [("s", "t", 1, 1), ("s", "t", 9, 1)]
        )
        rep = verify_solution(g, ids["s"], ids["t"], 1, 5, [[1]], use_milp=True)
        assert rep.clean
        assert rep.exact_ratio == 9.0  # verifier reports, doesn't judge
