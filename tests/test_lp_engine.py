"""LP engine contract tests (:mod:`repro.lp.engine`).

Three layers of guarantees:

1. **scipy bit-compatibility** — the engine's scipy path must return the
   exact arrays the pre-engine inline ``linprog`` calls returned (same
   assembly, same method, same options), so the fallback is byte-equal to
   the historical solver on every instance.
2. **Accounting** — pivot counts are never silently dropped
   (``lp.pivots_unreported`` instead of a fake 0), per-backend solve
   counters fire, and the :func:`repro.obs.report.validate_trace`
   cross-checks accept real traces and reject cooked ones.
3. **Backend parity & process safety** — with highspy installed, both
   backends' answers verify against the same certificates (hypothesis
   property), warm starts hit, and engine/cache state never leaks across
   pickling boundaries (spawn-context worker pools).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
import scipy.optimize
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core import solve_krsp
from repro.core.auxgraph import build_aux_shifted
from repro.core.auxlp import MASS_CAP, solve_lp6, solve_ratio_lp
from repro.core.residual import build_residual
from repro.core.verify import verify_solution
from repro.graph import anticorrelated_weights, gnp_digraph
from repro.lp import engine as eng
from repro.lp.engine import (
    LPResult,
    count_pivots,
    force_backend,
    get_engine,
    highspy_available,
    reset_engine,
)
from repro.lp.flow_lp import incidence_matrix, solve_flow_lp
from repro.perf.auxcache import AuxCache


@pytest.fixture(autouse=True)
def _fresh_engine():
    reset_engine()
    yield
    reset_engine()


def _residual(seed: int, n: int = 9, p: float = 0.45):
    g = anticorrelated_weights(gnp_digraph(n, p, rng=seed), rng=seed + 1)
    flow_edges = [int(e) for e in range(0, g.m, 3)]
    return build_residual(g, flow_edges)


def _legacy_ratio_linprog(aux, cost_sign: int):
    """The exact pre-engine ``solve_ratio_lp`` assembly, inline."""
    h = aux.graph
    wraps = aux.wrap_cost
    chosen = (wraps * cost_sign) > 0
    other = (wraps * cost_sign) < 0
    if not chosen.any():
        return None
    idx = np.nonzero(chosen)[0]
    norm_row = sp.csr_matrix(
        (
            np.abs(wraps[idx]).astype(np.float64),
            (np.zeros(len(idx), dtype=np.int64), idx),
        ),
        shape=(1, h.m),
    )
    A_eq = sp.vstack([incidence_matrix(h), norm_row], format="csr")
    b_eq = np.zeros(h.n + 1)
    b_eq[-1] = 1.0
    ub = np.full(h.m, MASS_CAP)
    ub[other] = 0.0
    return scipy.optimize.linprog(
        c=h.delay.astype(np.float64),
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=np.stack([np.zeros(h.m), ub], axis=1),
        method="highs",
        options={},
    )


class TestScipyBitCompat:
    """The scipy path must be byte-equal to the pre-engine inline calls."""

    def test_ratio_lp_bit_identical_to_legacy_assembly(self):
        hits = 0
        for seed in range(12):
            res = _residual(seed)
            aux = build_aux_shifted(res.graph, 5)
            for sign in (+1, -1):
                legacy = _legacy_ratio_linprog(aux, sign)
                with force_backend("scipy"):
                    x = solve_ratio_lp(aux, sign)
                if legacy is None or legacy.status == 2:
                    assert x is None
                    continue
                hits += 1
                assert x is not None
                assert np.array_equal(x, np.maximum(legacy.x, 0.0))
        assert hits >= 3  # the corpus must actually exercise the solver

    def test_flow_lp_bit_identical_to_legacy_assembly(self):
        for seed in range(10):
            g = anticorrelated_weights(gnp_digraph(9, 0.4, rng=seed), rng=seed + 1)
            A_eq = incidence_matrix(g)
            b_eq = np.zeros(g.n)
            b_eq[0] += 2
            b_eq[8] -= 2
            legacy = scipy.optimize.linprog(
                c=g.cost.astype(np.float64),
                A_ub=sp.csr_matrix(g.delay.astype(np.float64)[None, :]),
                b_ub=np.array([30.0]),
                A_eq=A_eq,
                b_eq=b_eq,
                bounds=(0.0, 1.0),
                method="highs-ds",
                options={},
            )
            with force_backend("scipy"):
                lp = solve_flow_lp(g, 0, 8, 2, 30)
            if legacy.status == 2:
                assert lp is None
                continue
            assert lp is not None
            assert np.array_equal(lp.x, np.clip(legacy.x, 0.0, 1.0))
            assert lp.cost == float(legacy.fun)
            assert lp.dual_delay == float(-legacy.ineqlin.marginals[0])

    def test_lp6_bit_identical_to_legacy_assembly(self):
        res = _residual(4)
        aux = build_aux_shifted(res.graph, 2)
        h = aux.graph
        legacy = scipy.optimize.linprog(
            c=h.cost.astype(np.float64),
            A_ub=sp.csr_matrix(h.delay.astype(np.float64)[None, :]),
            b_ub=np.array([-1.0]),
            A_eq=incidence_matrix(h),
            b_eq=np.zeros(h.n),
            bounds=(0.0, MASS_CAP),
            method="highs",
        )
        with force_backend("scipy"):
            x = solve_lp6(aux, -1)
        if legacy.status == 2:
            assert x is None
        else:
            assert np.array_equal(x, np.maximum(legacy.x, 0.0))

    def test_warm_served_aux_is_still_bit_compatible(self):
        # Aux graphs served by the cache carry a warm handle; on the scipy
        # backend the handle must change nothing about the answer.
        res = _residual(2)
        cache = AuxCache(res)
        with force_backend("scipy"):
            for _ in range(3):
                aux_cached = cache.get(3)
                assert aux_cached.warm is not None
                aux_fresh = build_aux_shifted(res.graph, 3)
                assert aux_fresh.warm is None
                for sign in (+1, -1):
                    a = solve_ratio_lp(aux_cached, sign)
                    b = solve_ratio_lp(aux_fresh, sign)
                    if a is None:
                        assert b is None
                    else:
                        assert np.array_equal(a, b)
                flips = res.apply_flip([0, 1])
                cache.note_flips(flips)


class TestAccounting:
    def test_pivots_counted_when_reported(self):
        with obs.session():
            count_pivots(LPResult(status=0, success=True, x=None, fun=None, nit=7))
            count_pivots(LPResult(status=0, success=True, x=None, fun=None, nit=0))
            snap = obs.snapshot()
        # A genuine zero-pivot solve (presolve-solved) is *reported* zero,
        # not "unreported".
        assert snap.get("lp.pivots", 0) == 7
        assert "lp.pivots_unreported" not in snap

    def test_missing_nit_counts_unreported_not_zero(self):
        with obs.session():
            count_pivots(
                LPResult(status=0, success=True, x=None, fun=None, nit=None)
            )
            snap = obs.snapshot()
        assert snap.get("lp.pivots_unreported") == 1
        assert "lp.pivots" not in snap

    def test_backend_counter_fires_per_solve(self):
        g = anticorrelated_weights(gnp_digraph(8, 0.45, rng=3), rng=4)
        with obs.session(), force_backend("scipy"):
            solve_flow_lp(g, 0, 7, 2, 40)
            snap = obs.snapshot()
        assert snap.get("lp.backend.scipy.solves") == 1
        assert snap.get("lp.flow_lp.solves") == 1
        # Warm accounting is a highspy-only concept.
        assert "lp.warm_start.hit" not in snap
        assert "lp.warm_start.miss" not in snap

    def test_validate_trace_accepts_real_solver_run(self, tmp_path):
        from repro.obs.report import validate_file

        g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=6), rng=7)
        trace = tmp_path / "trace.jsonl"
        with obs.session(trace_path=trace):
            solve_krsp(g, 0, 9, 2, 40)
        assert validate_file(trace) == []

    def test_validate_trace_rejects_cooked_lp_counters(self, tmp_path):
        import json

        from repro.obs.report import load_trace, validate_trace

        g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=6), rng=7)
        trace = tmp_path / "trace.jsonl"
        with obs.session(trace_path=trace):
            solve_krsp(g, 0, 9, 2, 40)
        cooked = []
        for line in trace.read_text().splitlines():
            rec = json.loads(line)
            if rec.get("type") == "counters":
                rec["values"].pop("lp.pivots", None)
                rec["values"]["lp.pivots_unreported"] = 10_000
            cooked.append(json.dumps(rec))
        trace.write_text("\n".join(cooked) + "\n")
        problems = validate_trace(load_trace(trace))
        assert any("lp.pivots_unreported" in p for p in problems)

    def test_validate_trace_rejects_unbalanced_warm_accounting(self, tmp_path):
        import json

        from repro.obs.report import load_trace, validate_trace

        g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=6), rng=7)
        trace = tmp_path / "trace.jsonl"
        with obs.session(trace_path=trace):
            solve_krsp(g, 0, 9, 2, 40)
        cooked = []
        for line in trace.read_text().splitlines():
            rec = json.loads(line)
            if rec.get("type") == "counters":
                # Warm hits with no matching highspy solve count.
                rec["values"]["lp.warm_start.hit"] = 5
            cooked.append(json.dumps(rec))
        trace.write_text("\n".join(cooked) + "\n")
        problems = validate_trace(load_trace(trace))
        assert any("lp.warm_start" in p for p in problems)


class TestBackendSelection:
    def test_env_override_scipy(self, monkeypatch):
        monkeypatch.setenv(eng.BACKEND_ENV, "scipy")
        reset_engine()
        assert get_engine().backend_name == "scipy"

    def test_env_override_bogus_rejected(self, monkeypatch):
        from repro.errors import SolverError

        monkeypatch.setenv(eng.BACKEND_ENV, "turbopascal")
        reset_engine()
        with pytest.raises(SolverError):
            get_engine()

    def test_env_highspy_without_install_rejected(self, monkeypatch):
        if highspy_available():
            pytest.skip("highspy installed — forced selection succeeds")
        from repro.errors import SolverError

        monkeypatch.setenv(eng.BACKEND_ENV, "highspy")
        reset_engine()
        with pytest.raises(SolverError):
            get_engine()

    def test_auto_resolves_to_available_backend(self, monkeypatch):
        monkeypatch.delenv(eng.BACKEND_ENV, raising=False)
        reset_engine()
        expected = "highspy" if highspy_available() else "scipy"
        assert get_engine().backend_name == expected

    def test_force_backend_restores_previous_engine(self):
        outer = get_engine()
        with force_backend("scipy") as inner:
            assert get_engine() is inner
            assert inner is not outer
        assert get_engine() is outer


class TestProcessSafety:
    def test_engine_pickle_drops_models(self):
        engine = get_engine()
        g = anticorrelated_weights(gnp_digraph(8, 0.45, rng=3), rng=4)
        engine.solve_flow(g, 0, 7, 2, 40)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.backend_name == engine.backend_name
        assert not clone._store.models  # no HiGHS handle crosses a pickle

    def test_auxcache_token_rotates_on_unpickle(self):
        res = _residual(5)
        cache = AuxCache(res)
        cache.get(2)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.token != cache.token
        # The clone still serves correct graphs under its new identity.
        aux = clone.get(2)
        assert aux.warm is not None
        assert aux.warm.token() == clone.token

    def test_incremental_search_exposes_global_engine(self):
        from repro.perf import IncrementalSearch

        g = anticorrelated_weights(gnp_digraph(8, 0.45, rng=3), rng=4)
        search = IncrementalSearch(g)
        assert search.lp_engine is get_engine()
        # Not stored on the instance — nothing unpicklable to leak.
        assert "lp_engine" not in vars(search)


class TestOnlineResolveLiveness:
    def test_resolve_runs_through_engine(self):
        # The cold-fallback taxonomy itself is frozen by the pinned corpus
        # replay in tests/test_online_resolve.py; this asserts the engine
        # is actually the path those resolves take (per-backend counters
        # fire inside a resolve session).
        from repro.online import EdgeReweight, InstanceDelta, resolve, start_online

        g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=6), rng=7)
        state = start_online(g, 0, 9, 2, 40)
        with obs.session():
            resolve(state, InstanceDelta(ops=(EdgeReweight(0, cost=2, delay=3),)))
            snap = obs.snapshot()
        backend = get_engine().backend_name
        assert snap.get(f"lp.backend.{backend}.solves", 0) >= 1


class TestWarmHandles:
    def test_cached_aux_carries_handle_with_deltas(self):
        res = _residual(1)
        cache = AuxCache(res)
        aux = cache.get(2)
        handle = aux.warm
        assert handle is not None
        assert handle.layout() is not None
        v0 = handle.version()
        flips = res.apply_flip([0, 2])
        cache.note_flips(flips)
        cache.get(2)  # delta-refresh to current version
        dirty = handle.dirty_since(v0)
        assert dirty is not None
        assert set(dirty.tolist()) == set(flips.tolist())

    def test_dirty_since_gap_returns_none(self):
        res = _residual(1)
        cache = AuxCache(res)
        aux = cache.get(2)
        handle = aux.warm
        v0 = handle.version()
        res.apply_flip([0])  # version bump the cache never hears about
        assert handle.dirty_since(v0) is None
        assert handle.dirty_since(-1) is None


# ---------------------------------------------------------------------------
# highspy-only: warm starts + backend parity
# ---------------------------------------------------------------------------

needs_highspy = pytest.mark.skipif(
    not highspy_available(), reason="highspy not installed (perf extra)"
)


@needs_highspy
class TestHighspyWarmStarts:
    def test_warm_hits_across_flips(self):
        res = _residual(0)
        cache = AuxCache(res)
        with obs.session(), force_backend("highspy"):
            for _ in range(4):
                aux = cache.get(3)
                for sign in (+1, -1):
                    solve_ratio_lp(aux, sign)
                flips = res.apply_flip([0, 1])
                cache.note_flips(flips)
            snap = obs.snapshot()
        assert snap.get("lp.warm_start.hit", 0) >= 4
        assert snap.get("lp.warm_start.hit", 0) + snap.get(
            "lp.warm_start.miss", 0
        ) == snap.get("lp.backend.highspy.solves", 0)

    def test_warm_answers_match_cold_objective(self):
        res = _residual(0)
        cache = AuxCache(res)
        with force_backend("highspy"):
            for step in range(4):
                aux = cache.get(3)
                for sign in (+1, -1):
                    warm_x = solve_ratio_lp(aux, sign)
                    with force_backend("highspy"):
                        cold_x = solve_ratio_lp(
                            build_aux_shifted(res.graph, 3), sign
                        )
                    if warm_x is None:
                        assert cold_x is None
                        continue
                    h = aux.graph
                    assert np.dot(h.delay, warm_x) == pytest.approx(
                        np.dot(h.delay, cold_x), abs=1e-6
                    )
                flips = res.apply_flip([step % res.m])
                cache.note_flips(flips)


@needs_highspy
class TestBackendParity:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(6, 11),
        sign=st.sampled_from([+1, -1]),
    )
    def test_ratio_lp_objectives_agree(self, seed, n, sign):
        res = _residual(seed, n=n)
        aux = build_aux_shifted(res.graph, 2)
        with force_backend("scipy"):
            xs = solve_ratio_lp(aux, sign)
        with force_backend("highspy"):
            xh = solve_ratio_lp(aux, sign)
        if xs is None or xh is None:
            # Feasibility classification must agree even when optima vary.
            assert xs is None and xh is None
            return
        h = aux.graph
        assert np.dot(h.delay, xs) == pytest.approx(
            np.dot(h.delay, xh), rel=1e-6, abs=1e-6
        )
        # Both points satisfy conservation + normalization.
        A = incidence_matrix(h)
        for x in (xs, xh):
            assert np.max(np.abs(A @ x)) < 1e-6
            assert np.dot(np.abs(aux.wrap_cost), x) == pytest.approx(1.0, abs=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_full_solver_certificates_verify_on_both_backends(self, seed):
        g = anticorrelated_weights(
            gnp_digraph(9, 0.4, rng=seed), rng=seed + 1
        )
        for backend in ("scipy", "highspy"):
            with force_backend(backend):
                try:
                    sol = solve_krsp(g, 0, 8, 2, 40)
                except Exception:
                    continue  # infeasible instances raise uniformly
                report = verify_solution(
                    g, 0, 8, 2, 40, [list(p) for p in sol.paths],
                    check_bounds=False,
                )
                assert report.valid, f"{backend}: {report.issues}"
