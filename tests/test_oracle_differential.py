"""The differential runner, shrinker, and fuzz driver against planted bugs.

A test oracle is only trustworthy if it demonstrably *catches* the bug
classes it claims to. These tests plant each class — tampered totals,
budget violations, false infeasibility claims, non-disjoint paths, crashes,
feasibility disagreements — by monkeypatching evil solvers into the shared
``BASELINES`` registry (or the differential module's ``solve_krsp``), and
assert the exact typed :class:`Failure` comes out, survives shrinking, and
lands in the corpus as a replayable reproducer.
"""

import itertools
from types import SimpleNamespace

import pytest

from repro.baselines import BASELINES
from repro.baselines.minsum import BaselineResult, minsum_baseline
from repro.errors import InfeasibleInstanceError, ReproError
from repro.graph import from_edges
from repro.lp.milp import solve_krsp_milp
from repro.oracle import (
    FuzzConfig,
    OracleInstance,
    make_base_instance,
    run_differential,
    run_fuzz,
    shrink,
    write_report,
)
from repro.oracle.corpus import load_corpus


def feasible_instance(substrate="er", start_seed=0):
    for seed in itertools.count(start_seed):
        inst = make_base_instance(substrate, seed)
        if inst is None:
            continue
        exact = solve_krsp_milp(inst.graph, inst.s, inst.t, inst.k, inst.delay_bound)
        if exact is not None:
            return inst, exact


def two_edge_instance(delay_bound=5):
    """One cheap/slow and one pricey/fast parallel s-t edge, k=1."""
    g, ids = from_edges([("s", "t", 1, 9), ("s", "t", 5, 1)])
    return OracleInstance(
        graph=g, s=ids["s"], t=ids["t"], k=1, delay_bound=delay_bound,
        substrate="handmade",
    ).derive()


def forging_minsum(delta):
    """A baseline that solves honestly but lies about its cost total."""

    def evil(g, s, t, k, D):
        res = minsum_baseline(g, s, t, k, D)
        return BaselineResult(
            name=res.name, paths=res.paths, cost=res.cost + delta,
            delay=res.delay, meets_delay_bound=res.meets_delay_bound,
        )

    return evil


class TestCleanRun:
    def test_clean_instance_produces_no_failures(self):
        inst, exact = feasible_instance()
        report = run_differential(inst, exact=exact)
        assert report.ok, [f.as_dict() for f in report.failures]
        assert report.opt_cost == exact.cost
        assert "solve_krsp" in report.solvers_run
        assert set(BASELINES) <= set(report.solvers_run)

    def test_scaled_mode_is_opt_in(self):
        inst, exact = feasible_instance()
        a = run_differential(inst, exact=exact, run_scaled=False)
        b = run_differential(inst, exact=exact, run_scaled=True)
        assert "solve_krsp_scaled" not in a.solvers_run
        assert "solve_krsp_scaled" in b.solvers_run and b.ok


class TestPlantedBaselineBugs:
    def test_tampered_totals_become_invariant_failures(self, monkeypatch):
        inst, exact = feasible_instance()
        monkeypatch.setitem(BASELINES, "greedy_sequential", forging_minsum(+1))
        report = run_differential(inst, exact=exact)
        hits = [f for f in report.failures if f.solver == "greedy_sequential"]
        assert hits and all(f.kind == "invariant" for f in hits)
        assert any("claimed cost" in f.message for f in hits)

    def test_false_infeasibility_claim_is_caught(self, monkeypatch):
        inst, exact = feasible_instance()

        def defeatist(g, s, t, k, D):
            raise InfeasibleInstanceError("cannot be bothered")

        # lp_rounding carries the lemma5 guarantee: its infeasibility
        # verdicts are authoritative, so a false one must be flagged.
        monkeypatch.setitem(BASELINES, "lp_rounding_2_2", defeatist)
        report = run_differential(inst, exact=exact)
        hits = [f for f in report.failures if f.solver == "lp_rounding_2_2"]
        assert [f.kind for f in hits] == ["feasibility"]

    def test_heuristic_may_give_up_without_penalty(self, monkeypatch):
        inst, exact = feasible_instance()

        def defeatist(g, s, t, k, D):
            raise InfeasibleInstanceError("cannot be bothered")

        # ksp_filtering promises nothing, so giving up is tolerated.
        monkeypatch.setitem(BASELINES, "ksp_filtering", defeatist)
        report = run_differential(inst, exact=exact)
        assert not [f for f in report.failures if f.solver == "ksp_filtering"]

    def test_crash_is_reported_not_raised(self, monkeypatch):
        inst, exact = feasible_instance()

        def bomber(g, s, t, k, D):
            raise ReproError("kaboom")

        monkeypatch.setitem(BASELINES, "ksp_filtering", bomber)
        report = run_differential(inst, exact=exact)
        hits = [f for f in report.failures if f.solver == "ksp_filtering"]
        assert [f.kind for f in hits] == ["crash"]
        assert "kaboom" in hits[0].message

    def test_nondisjoint_paths_are_an_invariant_failure(self, monkeypatch):
        inst, exact = feasible_instance()

        def duplicator(g, s, t, k, D):
            res = minsum_baseline(g, s, t, k, D)
            paths = [list(res.paths[0])] * k
            flat = [e for p in paths for e in p]
            return BaselineResult(
                name="dup", paths=paths, cost=g.cost_of(flat),
                delay=g.delay_of(flat), meets_delay_bound=True,
            )

        monkeypatch.setitem(BASELINES, "greedy_sequential", duplicator)
        report = run_differential(inst, exact=exact)
        hits = [f for f in report.failures if f.solver == "greedy_sequential"]
        if inst.k == 1:  # k=1 duplication is a no-op; nothing to flag
            assert not hits
        else:
            assert hits and hits[0].kind == "invariant"
            assert "structural" in hits[0].message


class TestPlantedSolverBugs:
    def test_budget_violation_is_a_bifactor_failure(self, monkeypatch):
        inst = two_edge_instance(delay_bound=5)

        def evil_solver(g, s, t, k, D, **kw):
            # Returns the cheap path whose delay 9 busts the budget 5.
            return SimpleNamespace(paths=[[0]], cost=1, delay=9, cost_lower_bound=None)

        monkeypatch.setattr("repro.oracle.differential.solve_krsp", evil_solver)
        report = run_differential(inst)
        hits = [f for f in report.failures if f.solver == "solve_krsp"]
        assert [f.kind for f in hits] == ["bifactor"]
        assert "delay 9 exceeds budget 5" in hits[0].message

    def test_tampered_solver_totals_are_flagged(self, monkeypatch):
        inst = two_edge_instance(delay_bound=5)

        def evil_solver(g, s, t, k, D, **kw):
            # The fast path honestly costs 5; claim 3.
            return SimpleNamespace(paths=[[1]], cost=3, delay=1, cost_lower_bound=None)

        monkeypatch.setattr("repro.oracle.differential.solve_krsp", evil_solver)
        report = run_differential(inst)
        hits = [f for f in report.failures if f.solver == "solve_krsp"]
        assert hits and hits[0].kind == "invariant"
        assert "claimed cost 3" in hits[0].message

    def test_feasibility_disagreement_both_directions(self):
        # Force the oracle side to "infeasible" on a feasible instance:
        # every budget-feasible honest solution becomes a witness against it.
        inst = two_edge_instance(delay_bound=9)  # cheap path fits exactly
        report = run_differential(inst, exact=None)
        kinds = {(f.kind, f.solver) for f in report.failures}
        assert ("feasibility", "solve_krsp") in kinds
        assert ("feasibility", "minsum") in kinds


class TestShrinker:
    def test_shrinks_to_a_smaller_reproducer(self, monkeypatch):
        inst, _ = feasible_instance()
        monkeypatch.setitem(BASELINES, "greedy_sequential", forging_minsum(+1))
        result = shrink(
            inst, "invariant", "greedy_sequential",
            max_evaluations=120, milp_time_limit=10.0,
        )
        assert result.shrunk
        assert result.instance.graph.m < inst.graph.m
        assert 0 < result.evaluations <= 120
        replay = run_differential(result.instance, milp_time_limit=10.0)
        assert any(
            f.kind == "invariant" and f.solver == "greedy_sequential"
            for f in replay.failures
        )

    def test_vanished_failure_returns_input(self):
        inst, _ = feasible_instance()
        result = shrink(inst, "invariant", "greedy_sequential", max_evaluations=30)
        assert not result.shrunk
        assert result.instance == inst


class TestDriver:
    def test_clean_session_and_report_roundtrip(self, tmp_path):
        config = FuzzConfig(
            seed=3, budget_seconds=120.0, max_instances=6,
            corpus_dir=None, replay_corpus=False, milp_time_limit=10.0,
        )
        report = run_fuzz(config)
        assert report.clean
        assert report.instances_checked >= 6
        assert report.base_instances >= 1
        assert sum(report.per_substrate.values()) == report.base_instances
        out = tmp_path / "report.json"
        write_report(report, out)
        assert out.exists() and '"clean": true' in out.read_text()

    def test_planted_bug_fails_run_with_minimized_reproducer(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(BASELINES, "greedy_sequential", forging_minsum(+1))
        config = FuzzConfig(
            seed=0, budget_seconds=120.0, max_instances=8,
            corpus_dir=tmp_path, replay_corpus=False,
            shrink_evaluations=60, milp_time_limit=10.0,
        )
        report = run_fuzz(config)
        assert not report.clean
        saved = [r for r in report.failures if r.reproducer]
        assert saved, "no reproducer was persisted"
        entries = list(load_corpus(tmp_path))
        assert entries
        entry = entries[0]
        assert entry.meta["origin"] == "fuzz"
        assert entry.meta["failure_kind"] == "invariant"
        assert entry.meta["failure_solver"] == "greedy_sequential"
        replay = run_differential(entry.instance, milp_time_limit=10.0)
        assert any(
            f.kind == "invariant" and f.solver == "greedy_sequential"
            for f in replay.failures
        )
