"""Tests for the comparison baselines (experiment E4's cast)."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES,
    greedy_sequential_baseline,
    lp_rounding_baseline,
    min_cost_per_delay_cycle,
    minsum_baseline,
    orda_sprintson_baseline,
)
from repro.core import build_residual
from repro.errors import InfeasibleInstanceError
from repro.graph import from_edges, gnp_digraph, anticorrelated_weights, parallel_chains
from repro.graph.validate import check_disjoint_paths
from repro.lp.milp import solve_krsp_milp


def tradeoff_graph():
    return from_edges(
        [
            ("s", "a", 1, 9),  # 0 cheap slow
            ("a", "t", 1, 9),  # 1
            ("s", "b", 5, 1),  # 2 pricey fast
            ("b", "t", 5, 1),  # 3
            ("s", "c", 3, 3),  # 4 middle
            ("c", "t", 3, 3),  # 5
        ]
    )


class TestMinsum:
    def test_ignores_delay(self):
        g, ids = tradeoff_graph()
        res = minsum_baseline(g, ids["s"], ids["t"], 2, delay_bound=1)
        assert res.cost == 8  # cheap + middle
        assert not res.meets_delay_bound

    def test_infeasible_raises(self):
        g, s, t = parallel_chains(2, 2)
        with pytest.raises(InfeasibleInstanceError):
            minsum_baseline(g, s, t, 3, 100)


class TestLpRounding:
    def test_respects_twice_bounds(self):
        for seed in range(12):
            g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=seed), rng=seed + 1)
            exact = solve_krsp_milp(g, 0, 9, 2, 40)
            if exact is None or exact.cost == 0:
                continue
            res = lp_rounding_baseline(g, 0, 9, 2, 40)
            assert res.delay <= 2 * 40 + 1e-9
            assert res.cost <= 2 * exact.cost + 1e-9
            check_disjoint_paths(g, res.paths, 0, 9, k=2)


class TestMinRatioCycle:
    def test_finds_cheapest_per_delay(self):
        g, ids = tradeoff_graph()
        res = build_residual(g, [0, 1])  # cheap slow pair held
        res_g = res.graph
        os_cost = np.where(res.reversed_mask, 0, res_g.cost).astype(np.int64)
        cyc = min_cost_per_delay_cycle(res_g, os_cost, res_g.delay)
        assert cyc is not None
        c = int(os_cost[cyc].sum())
        d = int(res_g.delay[np.asarray(cyc)].sum())
        assert d < 0
        # Candidates: swap to middle (cost 6, delay -12, ratio .5) or to
        # pricey (cost 10, delay -16, ratio .625); best ratio is middle.
        assert c / -d == pytest.approx(0.5)

    def test_none_without_negative_delay_cycle(self):
        g, ids = from_edges([("s", "t", 1, 1), ("s", "t", 2, 2)])
        res = build_residual(g, [0])
        res_g = res.graph
        os_cost = np.where(res.reversed_mask, 0, res_g.cost).astype(np.int64)
        assert min_cost_per_delay_cycle(res_g, os_cost, res_g.delay) is None


class TestOrdaSprintson:
    def test_reaches_feasibility(self):
        g, ids = tradeoff_graph()
        res = orda_sprintson_baseline(g, ids["s"], ids["t"], 2, delay_bound=10)
        assert res.delay <= 10 and res.meets_delay_bound
        check_disjoint_paths(g, res.paths, ids["s"], ids["t"], k=2)

    def test_infeasible_raises(self):
        g, ids = tradeoff_graph()
        with pytest.raises(InfeasibleInstanceError):
            orda_sprintson_baseline(g, ids["s"], ids["t"], 2, delay_bound=3)

    def test_random_instances_feasible_and_bounded(self):
        checked = 0
        for seed in range(12):
            g = anticorrelated_weights(gnp_digraph(10, 0.4, rng=seed), rng=seed + 1)
            exact = solve_krsp_milp(g, 0, 9, 2, 40)
            if exact is None:
                continue
            res = orda_sprintson_baseline(g, 0, 9, 2, 40)
            assert res.delay <= 40
            check_disjoint_paths(g, res.paths, 0, 9, k=2)
            checked += 1
        assert checked >= 4


class TestGreedySequential:
    def test_solves_easy_instance(self):
        g, ids = tradeoff_graph()
        res = greedy_sequential_baseline(g, ids["s"], ids["t"], 2, 30)
        assert res.meets_delay_bound
        check_disjoint_paths(g, res.paths, ids["s"], ids["t"], k=2)

    def test_fails_on_trap(self):
        # Suurballe's trap: greedy takes s-a-b-t, stranding the second path.
        g, ids = from_edges(
            [
                ("s", "a", 1, 1),
                ("a", "b", 0, 0),
                ("b", "t", 1, 1),
                ("s", "b", 9, 1),
                ("a", "t", 9, 1),
            ]
        )
        with pytest.raises(InfeasibleInstanceError):
            greedy_sequential_baseline(g, ids["s"], ids["t"], 2, 2)

    def test_budget_partitioning(self):
        g, ids = tradeoff_graph()
        # Budget 12 fair-shares to 6 per round: forces middle+pricey-ish mix.
        res = greedy_sequential_baseline(g, ids["s"], ids["t"], 2, 12)
        assert res.delay <= 12


def test_registry_complete():
    assert set(BASELINES) == {
        "minsum",
        "lp_rounding_2_2",
        "orda_sprintson_style",
        "greedy_sequential",
        "ksp_filtering",
    }
