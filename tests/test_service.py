"""Tests for the kRSP solve service (src/repro/service, docs/SERVICE.md).

Three layers:

* pure units — wire protocol (canonicalization, validation, dedup keys)
  and the fairness scheduler (exact weighted-round-robin interleaves);
* one shared live server (module-scoped, 2 spawn workers, chaos hooks
  on) for the concurrency suite: parallel mixed-priority clients,
  byte-identical dedup, deadline-miss-as-degraded, worker-crash
  respawn, journal-backed status, online resolve sessions;
* dedicated short-lived servers for the paths that poison a shared one
  (graceful drain / 503).
"""

from __future__ import annotations

import http.client
import json
import threading

import numpy as np
import pytest

from repro.errors import InputError
from repro.eval.experiments import figure1_instance
from repro.graph.generators import parallel_chains
from repro.graph.io import instance_to_dict
from repro.service import client as svc
from repro.service.protocol import (
    REQUEST_SCHEMA,
    canonical_instance,
    instance_digest,
    parse_request,
    request_key,
)
from repro.service.scheduler import SessionGate, WeightedFairQueue
from repro.service.server import ServiceConfig, ServiceThread


def fig1_instance_dict() -> dict:
    g, ids = figure1_instance(6, 10)
    return instance_to_dict(g, ids["s"], ids["t"], 2, 6)


def chains_instance_dict(seed: int = 0, length: int = 3) -> dict:
    g, s, t = parallel_chains(2, length)
    rng = np.random.default_rng(seed)
    cost = rng.integers(1, 9, size=g.m).astype(np.int64)
    delay = rng.integers(1, 5, size=g.m).astype(np.int64)
    g = g.with_weights(cost, delay)
    return instance_to_dict(g, s, t, 2, int(delay.sum()))


# ---------------------------------------------------------------------------
# protocol units


class TestProtocol:
    def test_canonicalization_is_spelling_independent(self):
        inst = fig1_instance_dict()
        shuffled = dict(reversed(list(inst.items())))
        assert instance_digest(canonical_instance(inst)) == instance_digest(
            canonical_instance(shuffled)
        )

    def test_parse_fills_hash_for_inline_instances(self):
        req = parse_request({"schema": REQUEST_SCHEMA,
                             "instance": fig1_instance_dict()})
        assert req.instance_hash == instance_digest(req.instance)
        assert req.kind == "solve"
        assert req.wait is True

    @pytest.mark.parametrize(
        "mutation, fragment",
        [
            ({"schema": "nope/9"}, "schema"),
            ({"kind": "dance"}, "kind"),
            ({"tenant": ""}, "tenant"),
            ({"priority": "high"}, "priority"),
            ({"eps": -1.0}, "eps"),
            ({"eps": [0.1]}, "eps"),
            ({"deadline_seconds": -2}, "deadline_seconds"),
            ({"wait": "yes"}, "wait"),
            ({"instance_hash": "tooshort"}, "instance_hash"),
            ({"overrides": {"q": 1}}, "override"),
            ({"delta": {"schema": "instance-delta/1"}}, "delta"),
        ],
    )
    def test_parse_rejects_bad_fields(self, mutation, fragment):
        body = {"schema": REQUEST_SCHEMA, "instance": fig1_instance_dict()}
        body.update(mutation)
        with pytest.raises(InputError, match=fragment):
            parse_request(body)

    def test_resolve_needs_session_hash_and_delta(self):
        with pytest.raises(InputError, match="instance_hash"):
            parse_request({"schema": REQUEST_SCHEMA, "kind": "resolve",
                           "instance": fig1_instance_dict(),
                           "delta": {"schema": "instance-delta/1", "ops": []}})
        with pytest.raises(InputError, match="delta"):
            parse_request({"schema": REQUEST_SCHEMA, "kind": "resolve",
                           "instance_hash": "0" * 64})

    def test_priority_clamped_not_rejected(self):
        body = {"schema": REQUEST_SCHEMA, "instance": fig1_instance_dict(),
                "priority": 99}
        assert parse_request(body).priority == 2

    def test_chaos_stripped_unless_allowed(self):
        body = {"schema": REQUEST_SCHEMA, "instance": fig1_instance_dict(),
                "chaos": "exit"}
        assert parse_request(body).chaos is None
        assert parse_request(body, allow_chaos=True).chaos == "exit"

    def test_request_key_ignores_scheduling_metadata(self):
        inst = fig1_instance_dict()
        a = parse_request({"schema": REQUEST_SCHEMA, "instance": inst,
                           "tenant": "alice", "priority": 2})
        b = parse_request({"schema": REQUEST_SCHEMA, "instance": inst,
                           "tenant": "bravo", "priority": -1, "wait": False})
        assert request_key(a) == request_key(b)

    def test_request_key_separates_answers(self):
        inst = fig1_instance_dict()
        base = parse_request({"schema": REQUEST_SCHEMA, "instance": inst})
        other_eps = parse_request({"schema": REQUEST_SCHEMA, "instance": inst,
                                   "eps": 0.5})
        other_deadline = parse_request({"schema": REQUEST_SCHEMA,
                                        "instance": inst,
                                        "deadline_seconds": 5.0})
        keys = {request_key(base), request_key(other_eps),
                request_key(other_deadline)}
        assert len(keys) == 3
        # ... but deadlines within the same 0.1 s bucket share a key.
        close = parse_request({"schema": REQUEST_SCHEMA, "instance": inst,
                               "deadline_seconds": 5.04})
        assert request_key(close) == request_key(other_deadline)

    def test_session_version_distinguishes_resolve_keys(self):
        delta = {"schema": "instance-delta/1",
                 "ops": [{"op": "reweight", "edge": 0, "cost": 2, "delay": 1}]}
        req = parse_request({"schema": REQUEST_SCHEMA, "kind": "resolve",
                             "instance_hash": "a" * 64, "delta": delta})
        assert request_key(req, session_version=1) != request_key(
            req, session_version=2
        )


# ---------------------------------------------------------------------------
# scheduler units


class TestWeightedFairQueue:
    def test_equal_weights_interleave_round_robin(self):
        q = WeightedFairQueue()
        for i in range(3):
            q.push("a", 0, f"a{i}")
            q.push("b", 0, f"b{i}")
        order = [q.pop() for _ in range(6)]
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_weight_two_gets_two_slots_per_cycle(self):
        q = WeightedFairQueue()
        q.set_weight("big", 2)
        for i in range(6):
            q.push("big", 0, f"B{i}")
        for i in range(3):
            q.push("small", 0, f"s{i}")
        order = [q.pop() for _ in range(9)]
        # Smooth WRR: big, small, big, big, small, big ... — never three
        # consecutive big while small has work, 2:1 overall.
        assert order.count("s0") == 1
        first_six = order[:6]
        assert sum(1 for x in first_six if x.startswith("B")) == 4
        assert sum(1 for x in first_six if x.startswith("s")) == 2

    def test_flood_cannot_starve_the_other_tenant(self):
        q = WeightedFairQueue()
        for i in range(100):
            q.push("flood", 0, f"f{i}")
        q.push("quiet", 0, "q0")
        popped = [q.pop() for _ in range(4)]
        assert "q0" in popped  # served within one fairness cycle

    def test_priority_orders_within_tenant_fifo_within_band(self):
        q = WeightedFairQueue()
        q.push("t", 0, "low-1")
        q.push("t", 2, "hi-1")
        q.push("t", 0, "low-2")
        q.push("t", 2, "hi-2")
        assert [q.pop() for _ in range(4)] == [
            "hi-1", "hi-2", "low-1", "low-2"
        ]

    def test_pop_empty_returns_none_and_len_tracks(self):
        q = WeightedFairQueue()
        assert q.pop() is None
        q.push("t", 0, "x")
        assert len(q) == 1
        assert q.pop() == "x"
        assert len(q) == 0
        assert q.depth_by_tenant() == {}

    def test_bad_weights_rejected(self):
        q = WeightedFairQueue()
        with pytest.raises(ValueError):
            q.set_weight("t", 0)
        with pytest.raises(ValueError):
            WeightedFairQueue(default_weight=0)


class TestSessionGate:
    def test_admit_park_release_order(self):
        gate = SessionGate()
        assert gate.admit("h1", "job-a")
        assert not gate.admit("h1", "job-b")
        assert not gate.admit("h1", "job-c")
        assert gate.admit("h2", "other")  # independent sessions run freely
        assert gate.parked_count() == 2
        released = gate.release("h1")
        assert released == ["job-b", "job-c"]
        assert gate.parked_count() == 0
        assert gate.admit("h1", "job-b")  # free again

    def test_release_unknown_key_is_empty(self):
        assert SessionGate().release("nope") == []


# ---------------------------------------------------------------------------
# live-server integration


@pytest.fixture(scope="module")
def server():
    """One shared 2-worker service with chaos hooks enabled."""
    thread = ServiceThread(ServiceConfig(workers=2, allow_chaos=True))
    yield thread
    thread.stop(drain=False)


def raw_post_solve(url: str, body: dict) -> tuple[int, bytes, dict]:
    """POST /v1/solve returning the *raw* body bytes (dedup identity)."""
    host, port = url.split("//", 1)[1].split(":")
    payload = json.dumps(body).encode("utf-8")
    conn = http.client.HTTPConnection(host, int(port), timeout=120.0)
    try:
        conn.request("POST", "/v1/solve", body=payload,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        return (resp.status, resp.read(),
                {k.lower(): v for k, v in resp.getheaders()})
    finally:
        conn.close()


class TestServiceSolve:
    def test_solve_roundtrip_has_verified_certificate(self, server):
        code, resp, hdrs = svc.submit(
            server.url, svc.solve_request(fig1_instance_dict(),
                                          deadline_seconds=60)
        )
        assert code == 200
        assert resp["schema"] == "krsp-service-result/1"
        assert resp["state"] == "done"
        assert resp["verification"]["verified"] is True
        cert = resp["solution"]["certificate"]
        assert cert["delay_slack"] >= 0
        assert resp["instance_hash"] == instance_digest(
            canonical_instance(fig1_instance_dict())
        )

    def test_parallel_mixed_priority_clients(self, server):
        instances = [chains_instance_dict(seed=100 + i) for i in range(6)]
        results: list[tuple[int, dict]] = [None] * len(instances)

        def go(i: int) -> None:
            code, resp, _ = svc.submit(
                server.url,
                svc.solve_request(
                    instances[i],
                    tenant=["alice", "bravo", "carol"][i % 3],
                    priority=(i % 5) - 2,
                    deadline_seconds=60,
                ),
            )
            results[i] = (code, resp)

        threads = [threading.Thread(target=go, args=(i,))
                   for i in range(len(instances))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for code, resp in results:
            assert code == 200
            assert resp["state"] == "done"
            assert resp["verification"]["verified"] is True

    def test_dedup_shares_byte_identical_results(self, server):
        body = svc.solve_request(chains_instance_dict(seed=777),
                                 chaos="sleep", deadline_seconds=60)
        out: list[tuple[int, bytes, dict]] = [None, None, None]

        def go(i: int) -> None:
            out[i] = raw_post_solve(server.url, body)

        threads = [threading.Thread(target=go, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        statuses = [o[0] for o in out]
        assert statuses == [200, 200, 200]
        bodies = {o[1] for o in out}
        assert len(bodies) == 1, "dedup subscribers must get identical bytes"
        dedups = sorted(o[2]["x-krsp-dedup"] for o in out)
        assert dedups == ["hit", "hit", "miss"]
        jobs = {o[2]["x-krsp-job"] for o in out}
        assert len(jobs) == 1

    def test_deadline_miss_is_degraded_not_500(self, server):
        code, resp, _ = svc.submit(
            server.url,
            svc.solve_request(chains_instance_dict(seed=5, length=5),
                              deadline_seconds=0.0),
        )
        assert code == 200, "budget exhaustion is a result, not an error"
        assert resp["state"] == "degraded"
        cert = resp["solution"]["certificate"]
        assert cert["exhausted_reason"] == "deadline"
        # Even the degraded answer is structurally verified: real paths,
        # totals recomputed and matching.
        assert resp["verification"]["valid"] is True
        assert resp["verification"]["verified"] is True

    def test_status_transitions_from_the_journal(self, server):
        code, resp, hdrs = svc.submit(
            server.url, svc.solve_request(fig1_instance_dict(),
                                          deadline_seconds=60)
        )
        assert code == 200
        job_id = hdrs["x-krsp-job"]
        code, st, _ = svc.status(server.url, job_id)
        assert code == 200
        states = [t["state"] for t in st["transitions"]]
        assert states == ["queued", "running", "done"]
        code, res, _ = svc.result(server.url, job_id)
        assert code == 200
        assert res["job_id"] == job_id

    def test_unknown_ids_are_404(self, server):
        assert svc.status(server.url, "job-999999")[0] == 404
        assert svc.result(server.url, "job-999999")[0] == 404
        code, resp, _ = svc.submit(
            server.url,
            svc.solve_request(instance_hash="f" * 64, deadline_seconds=5),
        )
        assert code == 404  # solve by never-seen hash

    def test_bad_request_is_400(self, server):
        code, resp, _ = svc.submit(server.url, {"schema": "wrong/1"})
        assert code == 400
        code, resp, _ = svc.request_json(
            server.url + "/v1/solve", {"schema": REQUEST_SCHEMA}
        )
        assert code == 400

    def test_resolve_reuses_the_session_and_verifies(self, server):
        inst = chains_instance_dict(seed=4242)
        code, resp, _ = svc.submit(
            server.url, svc.solve_request(inst, deadline_seconds=60)
        )
        assert code == 200 and resp["state"] == "done"
        h = resp["instance_hash"]
        delta = {"schema": "instance-delta/1",
                 "ops": [{"op": "reweight", "edge": 0, "cost": 3, "delay": 1}]}
        code, resp, _ = svc.submit(
            server.url,
            svc.solve_request(kind="resolve", instance_hash=h, delta=delta,
                              deadline_seconds=60),
        )
        assert code == 200
        assert resp["state"] == "done"
        assert resp["verification"]["verified"] is True

    def test_resolve_without_session_is_404(self, server):
        delta = {"schema": "instance-delta/1",
                 "ops": [{"op": "reweight", "edge": 0, "cost": 2, "delay": 1}]}
        code, resp, _ = svc.submit(
            server.url,
            svc.solve_request(kind="resolve", instance_hash="e" * 64,
                              delta=delta),
        )
        assert code == 404

    def test_solve_by_hash_after_inline_solve(self, server):
        inst = chains_instance_dict(seed=31337)
        code, resp, _ = svc.submit(
            server.url, svc.solve_request(inst, deadline_seconds=60)
        )
        assert code == 200
        h = resp["instance_hash"]
        code, resp2, _ = svc.submit(
            server.url,
            svc.solve_request(instance_hash=h, deadline_seconds=60),
        )
        assert code == 200
        assert resp2["solution"]["cost"] == resp["solution"]["cost"]

    def test_wait_false_ack_then_poll_result(self, server):
        code, ack, hdrs = svc.submit(
            server.url,
            svc.solve_request(chains_instance_dict(seed=808),
                              deadline_seconds=60, wait=False),
        )
        assert code == 202
        assert ack["schema"] == "krsp-service-ack/1"
        job_id = ack["job_id"]
        deadline = threading.Event()
        for _ in range(600):
            code, res, _ = svc.result(server.url, job_id)
            if code == 200:
                break
            deadline.wait(0.05)
        assert code == 200
        assert res["state"] == "done"

    def test_worker_crash_respawns_pool_and_fails_only_the_job(self, server):
        code, resp, _ = svc.submit(
            server.url,
            svc.solve_request(chains_instance_dict(seed=666), chaos="exit",
                              deadline_seconds=60),
        )
        # The chaos job dies twice (original + one retry) and fails alone.
        assert code == 200
        assert resp["state"] == "failed"
        assert "died" in resp["error"]
        # The pool was respawned: the very next solve succeeds.
        code, resp, _ = svc.submit(
            server.url,
            svc.solve_request(chains_instance_dict(seed=667),
                              deadline_seconds=60),
        )
        assert code == 200
        assert resp["state"] == "done"
        text = svc.scrape_metrics(server.url)
        assert "repro_service_worker_respawns_total" in text

    def test_metrics_endpoint_exposes_service_counters(self, server):
        from repro.obs.promtext import parse_prometheus

        text = svc.scrape_metrics(server.url)
        families = parse_prometheus(text)
        assert "repro_service_requests_total" in families
        assert "repro_service_request_seconds" in families
        # Worker-side solver counters are harvested into the same page.
        assert "repro_krsp_solves_total" in families

    def test_healthz_reports_queue_shape(self, server):
        code, health, _ = svc.healthz(server.url)
        assert code == 200
        assert health["status"] == "ok"
        assert health["workers"] == 2


class TestGracefulDrain:
    def test_drain_rejects_new_work_finishes_old(self):
        thread = ServiceThread(ServiceConfig(workers=1, allow_chaos=True,
                                             warm=False))
        try:
            slow = svc.solve_request(chains_instance_dict(seed=12),
                                     chaos="sleep", deadline_seconds=60)
            box: list = [None]

            def go() -> None:
                box[0] = svc.submit(thread.url, slow)

            t = threading.Thread(target=go)
            t.start()
            # Wait until the slow job is actually admitted.
            for _ in range(200):
                code, health, _ = svc.healthz(thread.url)
                if health["inflight"] or health["queue_depth"]:
                    break
                threading.Event().wait(0.02)
            thread.begin_drain()
            code, resp, _ = svc.submit(
                thread.url, svc.solve_request(fig1_instance_dict())
            )
            assert code == 503
            code, health, _ = svc.healthz(thread.url)
            assert health["status"] == "draining"
            t.join(timeout=120.0)
            assert not t.is_alive()
            code, resp, _ = box[0]
            assert code == 200, "in-flight work must finish during drain"
            assert resp["state"] == "done"
        finally:
            thread.stop(drain=True)
