"""Tests for unit-capacity max-flow against networkx ground truth."""

import networkx as nx
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.flow import has_k_disjoint_paths, max_disjoint_paths, max_flow_value
from repro.flow.decompose import decompose_flow
from repro.graph import (
    from_edges,
    gnp_digraph,
    parallel_chains,
    to_networkx,
    uniform_weights,
)
from repro.graph.validate import check_disjoint_paths


class TestBasics:
    def test_parallel_chains_exact_value(self):
        for k in (1, 2, 4):
            g, s, t = parallel_chains(k, 3)
            assert max_flow_value(g, s, t) == k
            assert has_k_disjoint_paths(g, s, t, k)
            assert not has_k_disjoint_paths(g, s, t, k + 1)

    def test_bottleneck(self):
        # Two branches join into a single bridge edge: value 1.
        g, ids = from_edges(
            [
                ("s", "a", 1, 1),
                ("s", "b", 1, 1),
                ("a", "m", 1, 1),
                ("b", "m", 1, 1),
                ("m", "t", 1, 1),
            ]
        )
        assert max_flow_value(g, ids["s"], ids["t"]) == 1

    def test_limit_short_circuits(self):
        g, s, t = parallel_chains(5, 2)
        used = max_disjoint_paths(g, s, t, limit=2)
        assert int(used.sum()) == 4  # 2 paths x 2 edges

    def test_s_equals_t(self):
        g, s, t = parallel_chains(2, 2)
        assert max_flow_value(g, s, s) == 0
        assert not has_k_disjoint_paths(g, s, s, 1)
        assert has_k_disjoint_paths(g, s, s, 0)

    def test_disconnected(self):
        g, ids = from_edges([("a", "b", 1, 1)], nodes=["a", "b", "z"])
        assert max_flow_value(g, ids["a"], ids["z"]) == 0

    def test_flow_decomposes_into_valid_paths(self):
        g, s, t = parallel_chains(3, 4)
        used = max_disjoint_paths(g, s, t)
        paths, cycles = decompose_flow(g, np.nonzero(used)[0], s, t)
        assert cycles == []
        check_disjoint_paths(g, paths, s, t, k=3)

    def test_backward_augmentation_needed(self):
        # Classic example where a greedy path must be partially undone:
        # s->a->b->t and s->b, a->t; greedy s->a->b->t blocks both unless
        # the algorithm pushes back along a->b.
        g, ids = from_edges(
            [
                ("s", "a", 1, 1),
                ("a", "b", 1, 1),
                ("b", "t", 1, 1),
                ("s", "b", 1, 1),
                ("a", "t", 1, 1),
            ]
        )
        assert max_flow_value(g, ids["s"], ids["t"]) == 2


@settings(deadline=None, max_examples=50)
@given(st.integers(0, 100_000))
def test_value_matches_networkx(seed):
    g = gnp_digraph(12, 0.25, rng=seed)
    if g.m == 0:
        return
    nxg = to_networkx(g)
    for u, v in list(nxg.edges()):
        pass
    simple = nx.DiGraph()
    simple.add_nodes_from(range(g.n))
    for e in range(g.m):
        u, v = int(g.tail[e]), int(g.head[e])
        if simple.has_edge(u, v):
            simple[u][v]["capacity"] += 1
        else:
            simple.add_edge(u, v, capacity=1)
    expected = nx.maximum_flow_value(simple, 0, g.n - 1)
    assert max_flow_value(g, 0, g.n - 1) == expected


@settings(deadline=None, max_examples=30)
@given(st.integers(0, 100_000))
def test_flow_always_decomposable(seed):
    g = gnp_digraph(10, 0.3, rng=seed)
    s, t = 0, g.n - 1
    used = max_disjoint_paths(g, s, t)
    val = max_flow_value(g, s, t)
    paths, cycles = decompose_flow(g, np.nonzero(used)[0], s, t)
    assert len(paths) == val
    check_disjoint_paths(g, paths, s, t)
