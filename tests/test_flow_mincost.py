"""Tests for min-cost k-flow and Suurballe paths vs networkx/brute force."""

import itertools

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.flow import min_cost_k_flow, suurballe_k_paths
from repro.graph import from_edges, gnp_digraph, parallel_chains, uniform_weights
from repro.graph.validate import check_disjoint_paths


def nx_min_cost_k_flow(g, s, t, k, weight):
    """Reference via networkx max_flow_min_cost on a unit-capacity copy.

    Requires a simple digraph (networkx flow rejects multigraphs); the
    random instances used here have no parallel edges.
    """
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(g.n))
    for e in range(g.m):
        u, v = int(g.tail[e]), int(g.head[e])
        assert not nxg.has_edge(u, v), "reference needs a simple digraph"
        nxg.add_edge(u, v, capacity=1, weight=int(weight[e]))
    nxg.add_node("super_t")
    nxg.add_edge(t, "super_t", capacity=k, weight=0)
    flow = nx.max_flow_min_cost(nxg, s, "super_t")
    value = flow.get(t, {}).get("super_t", 0)
    if value < k:
        return None
    cost = 0
    for u in flow:
        for v, amt in flow[u].items():
            if v != "super_t" and amt:
                cost += nxg[u][v]["weight"] * amt
    return cost


class TestMinCostKFlow:
    def test_picks_cheapest_combination(self):
        g, s, t = parallel_chains(3, 1)
        g = g.with_weights(np.array([5, 1, 3]), np.zeros(3, dtype=np.int64))
        res = min_cost_k_flow(g, s, t, 2)
        assert res.weight == 4
        assert sorted(np.nonzero(res.used)[0].tolist()) == [1, 2]

    def test_requires_rerouting(self):
        # Cheapest single path uses the middle edge; two disjoint paths
        # must push back across it (Suurballe's classic example).
        g, ids = from_edges(
            [
                ("s", "a", 1, 0),
                ("a", "t", 8, 0),
                ("s", "b", 8, 0),
                ("b", "t", 1, 0),
                ("a", "b", 1, 0),
            ]
        )
        res = min_cost_k_flow(g, ids["s"], ids["t"], 2)
        # Optimal: s-a-t (9) + s-b-t (9) = 18; using a->b would strand flow.
        assert res.weight == 18

    def test_infeasible_returns_none(self):
        g, s, t = parallel_chains(2, 3)
        assert min_cost_k_flow(g, s, t, 3) is None

    def test_k_zero(self):
        g, s, t = parallel_chains(2, 2)
        res = min_cost_k_flow(g, s, t, 0)
        assert res.weight == 0 and not res.used.any()

    def test_negative_weight_rejected(self):
        g, s, t = parallel_chains(2, 2)
        with pytest.raises(GraphError):
            min_cost_k_flow(g, s, t, 1, weight=-np.ones(g.m, dtype=np.int64))

    def test_s_eq_t_rejected(self):
        g, s, t = parallel_chains(2, 2)
        with pytest.raises(GraphError):
            min_cost_k_flow(g, s, s, 1)

    def test_custom_weight_array(self):
        g, s, t = parallel_chains(2, 1)
        g = g.with_weights(np.array([1, 9]), np.array([9, 1]))
        by_cost = min_cost_k_flow(g, s, t, 1)
        by_delay = min_cost_k_flow(g, s, t, 1, weight=g.delay)
        assert np.nonzero(by_cost.used)[0].tolist() == [0]
        assert np.nonzero(by_delay.used)[0].tolist() == [1]


class TestSuurballe:
    def test_returns_valid_disjoint_paths(self):
        g, ids = from_edges(
            [
                ("s", "a", 1, 0),
                ("a", "t", 8, 0),
                ("s", "b", 8, 0),
                ("b", "t", 1, 0),
                ("a", "b", 1, 0),
            ]
        )
        paths = suurballe_k_paths(g, ids["s"], ids["t"], 2)
        check_disjoint_paths(g, paths, ids["s"], ids["t"], k=2)
        assert sum(g.cost_of(p) for p in paths) == 18

    def test_none_when_infeasible(self):
        g, s, t = parallel_chains(2, 2)
        assert suurballe_k_paths(g, s, t, 3) is None

    def test_weight_override(self):
        g, s, t = parallel_chains(3, 1)
        g = g.with_weights(np.array([5, 1, 3]), np.array([1, 5, 3]))
        by_delay = suurballe_k_paths(g, s, t, 2, weight=g.delay)
        total_delay = sum(g.delay_of(p) for p in by_delay)
        assert total_delay == 4


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 100_000), st.integers(1, 3))
def test_matches_networkx_min_cost(seed, k):
    g = uniform_weights(gnp_digraph(10, 0.3, rng=seed), (0, 12), (1, 5), rng=seed + 1)
    s, t = 0, g.n - 1
    res = min_cost_k_flow(g, s, t, k)
    expected = nx_min_cost_k_flow(g, s, t, k, g.cost)
    if expected is None:
        assert res is None
    else:
        assert res is not None and res.weight == expected
        # And the flow decomposes into k valid disjoint paths.
        paths = suurballe_k_paths(g, s, t, k)
        check_disjoint_paths(g, paths, s, t, k=k)
        assert sum(g.cost_of(p) for p in paths) <= expected
