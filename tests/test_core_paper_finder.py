"""Fidelity tests: the literal Algorithm 3 finder vs the production one."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_aux_paper, build_residual
from repro.core.auxlp import solve_lp6
from repro.core.search import (
    SearchStats,
    find_bicameral_candidates,
    find_bicameral_candidates_paper,
    reversed_edge_anchors,
)
from repro.flow import suurballe_k_paths
from repro.graph import from_edges, gnp_digraph, anticorrelated_weights
from repro.graph.validate import is_cycle


@pytest.fixture
def tradeoff():
    g, ids = from_edges(
        [
            ("s", "a", 1, 9),
            ("a", "t", 1, 9),
            ("s", "b", 5, 1),
            ("b", "t", 5, 1),
        ]
    )
    return g, build_residual(g, [0, 1])


class TestAnchors:
    def test_anchors_cover_reversed_endpoints(self, tradeoff):
        g, res = tradeoff
        anchors = reversed_edge_anchors(res)
        # Vertex ids: s=0, a=1, t=2, b=3; reversed edges are a->s and t->a,
        # so endpoints are {s, a, t}.
        assert set(anchors) == {0, 1, 2}

    def test_no_solution_no_anchors(self):
        g, ids = from_edges([("s", "t", 1, 1)])
        res = build_residual(g, [])
        assert reversed_edge_anchors(res) == []


class TestLp6:
    def test_buys_required_delay_reduction(self, tradeoff):
        g, res = tradeoff
        # Need at least 16 delay units; the reroute cycle provides -16.
        # Anchor at s (=0): the cycle's running cost from s stays in [0, 10]
        # (from a it would dip negative — the Lemma 15 prefix caveat).
        aux = build_aux_paper(res.graph, 0, 10, +1)
        x = solve_lp6(aux, -16)
        assert x is not None
        # The circulation's projected delay meets the budget.
        delays = aux.graph.delay
        assert float(np.dot(delays, x)) <= -16 + 1e-6

    def test_infeasible_when_reduction_unreachable(self, tradeoff):
        g, res = tradeoff
        aux = build_aux_paper(res.graph, 1, 10, +1)
        assert solve_lp6(aux, -100) is None

    def test_zero_budget_trivial(self, tradeoff):
        g, res = tradeoff
        aux = build_aux_paper(res.graph, 1, 10, +1)
        x = solve_lp6(aux, 0)
        assert x is not None  # x = 0 qualifies


class TestPaperFinder:
    def test_finds_the_reroute_cycle(self, tradeoff):
        g, res = tradeoff
        cands = find_bicameral_candidates_paper(res, -16)
        assert any(c.cost == 8 and c.delay == -16 for c in cands)
        for c in cands:
            assert is_cycle(res.graph, list(c.edges))

    def test_stats_count_lp_solves(self, tradeoff):
        g, res = tradeoff
        stats = SearchStats()
        find_bicameral_candidates_paper(res, -16, b_values=[4, 8], stats=stats)
        # 2 B values x 3 anchors x 2 signs.
        assert stats.lp_solves == 12

    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 30_000))
    def test_agrees_with_production_on_best_type1(self, seed):
        """Both finders must surface a best-ratio type-1 cycle of the same
        quality (the selection-relevant invariant; candidate sets differ)."""
        from repro._util.intmath import ratio_cmp

        g = anticorrelated_weights(gnp_digraph(7, 0.5, rng=seed), rng=seed + 1)
        paths = suurballe_k_paths(g, 0, 6, 2)
        if paths is None:
            return
        sol = sorted(e for p in paths for e in p)
        res = build_residual(g, sol)
        delta_d = -max(1, g.delay_of(sol) // 2)
        prod = find_bicameral_candidates(res)
        paper = find_bicameral_candidates_paper(res, delta_d)

        def best1(cands):
            shaped = [c for c in cands if c.delay < 0 and c.cost > 0]
            if not shaped:
                return None
            best = shaped[0]
            for c in shaped[1:]:
                if ratio_cmp(c.delay, c.cost, best.delay, best.cost) < 0:
                    best = c
            return best

        b_prod, b_paper = best1(prod), best1(paper)
        if b_prod is None or b_paper is None:
            # Type-0 short-circuit in production, or LP6 budget filtered
            # everything — both legitimate; nothing to compare.
            return
        # Neither finder's best type-1 ratio is strictly better than the
        # other's by more than LP-budget effects allow: production must be
        # at least as good (it is sweep-complete).
        assert ratio_cmp(b_prod.delay, b_prod.cost, b_paper.delay, b_paper.cost) <= 0
