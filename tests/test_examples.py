"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; a broken example is a broken
doc. Each runs in a subprocess with a generous timeout and must exit 0
and produce its headline output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "paper_figures.py": "Figure 2",
    "quickstart.py": "exact optimum",
    "sdn_multipath.py": "cost/latency trade-off",
    "video_streaming.py": "traffic class",
    "resilient_backbone.py": "survival over",
}


@pytest.mark.parametrize("script,needle", sorted(CASES.items()))
def test_example_runs(script, needle):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert needle in proc.stdout


def test_all_examples_covered():
    """Adding an example without a smoke test should fail loudly."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(CASES)
