"""Tests for the scale-free generator and instance-level JSON I/O."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    gnp_digraph,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
    scale_free_digraph,
    uniform_weights,
)


class TestScaleFree:
    def test_deterministic(self):
        a = scale_free_digraph(25, 2, rng=8)
        b = scale_free_digraph(25, 2, rng=8)
        assert a == b

    def test_edge_count(self):
        n, m_attach = 30, 2
        g = scale_free_digraph(n, m_attach, rng=1)
        seed = (m_attach + 1) * m_attach  # directed clique edges
        grown = 2 * m_attach * (n - m_attach - 1)  # bidirected attachments
        assert g.m == seed + grown

    def test_hub_formation(self):
        g = scale_free_digraph(60, 2, rng=3)
        deg = np.bincount(g.tail, minlength=g.n)
        # Power-law-ish: the max degree dwarfs the median.
        assert deg.max() >= 4 * np.median(deg)

    def test_connected_from_any_vertex(self):
        from repro.flow import max_flow_value

        g = scale_free_digraph(20, 2, rng=5)
        # Bidirected attachment keeps everything strongly connected.
        assert max_flow_value(g, 19, 0) >= 1

    def test_validation(self):
        with pytest.raises(GraphError):
            scale_free_digraph(3, 3)
        with pytest.raises(GraphError):
            scale_free_digraph(5, 0)


class TestInstanceIo:
    def _instance(self):
        g = uniform_weights(gnp_digraph(8, 0.4, rng=2), rng=3)
        return g, 0, 7, 2, 33

    def test_dict_round_trip(self):
        g, s, t, k, D = self._instance()
        g2, s2, t2, k2, D2 = instance_from_dict(instance_to_dict(g, s, t, k, D))
        assert g2 == g and (s2, t2, k2, D2) == (s, t, k, D)

    def test_file_round_trip(self, tmp_path):
        g, s, t, k, D = self._instance()
        path = tmp_path / "inst.json"
        save_instance(path, g, s, t, k, D)
        g2, s2, t2, k2, D2 = load_instance(path)
        assert g2 == g and (s2, t2, k2, D2) == (s, t, k, D)

    def test_bad_schema(self):
        with pytest.raises(GraphError):
            instance_from_dict({"schema": -1})

    def test_solvable_after_round_trip(self, tmp_path):
        from repro.core import solve_krsp
        from repro.errors import InfeasibleInstanceError

        g, s, t, k, D = self._instance()
        path = tmp_path / "inst.json"
        save_instance(path, g, s, t, k, D)
        loaded = load_instance(path)
        try:
            a = solve_krsp(g, s, t, k, D)
            b = solve_krsp(*loaded)
            assert a.cost == b.cost and a.delay == b.delay
        except InfeasibleInstanceError:
            with pytest.raises(InfeasibleInstanceError):
                solve_krsp(*loaded)
