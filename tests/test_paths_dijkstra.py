"""Tests for Dijkstra (incl. potentials) against networkx ground truth."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph import DiGraph, from_edges, gnp_digraph, to_networkx, uniform_weights
from repro.paths import INF, dijkstra, extract_path


class TestBasics:
    def test_line_graph(self):
        g, ids = from_edges([("a", "b", 2, 0), ("b", "c", 3, 0)])
        dist, pred = dijkstra(g, ids["a"])
        assert dist[ids["c"]] == 5
        assert extract_path(pred, g, ids["c"]) == [0, 1]

    def test_unreachable_inf(self):
        g, ids = from_edges([("a", "b", 1, 0)], nodes=["a", "b", "z"])
        dist, _ = dijkstra(g, ids["a"])
        assert dist[ids["z"]] == INF

    def test_source_distance_zero_empty_path(self):
        g, ids = from_edges([("a", "b", 1, 0)])
        dist, pred = dijkstra(g, ids["a"])
        assert dist[ids["a"]] == 0
        assert extract_path(pred, g, ids["a"], source=ids["a"]) == []
        assert extract_path(pred, g, ids["a"], dist=dist) == []

    def test_extract_path_unreachable_raises(self):
        # Regression: unreachable targets used to come back as [] — the
        # same value as the genuine empty source path — so a missed
        # reachability check silently turned "no path" into "free path".
        g, ids = from_edges([("a", "b", 1, 0)], nodes=["a", "b", "z"])
        dist, pred = dijkstra(g, ids["a"])
        with pytest.raises(GraphError, match="unreachable"):
            extract_path(pred, g, ids["z"], source=ids["a"])
        with pytest.raises(GraphError, match="unreachable"):
            extract_path(pred, g, ids["z"], dist=dist)
        # Without source/dist the source-or-unreachable case is ambiguous
        # and must refuse rather than guess.
        with pytest.raises(GraphError, match="ambiguous|disambiguate"):
            extract_path(pred, g, ids["z"])

    def test_parallel_edges_take_cheaper(self):
        g, ids = from_edges([("a", "b", 9, 0), ("a", "b", 4, 0)])
        dist, pred = dijkstra(g, ids["a"])
        assert dist[ids["b"]] == 4
        assert extract_path(pred, g, ids["b"]) == [1]

    def test_alternative_weight_array(self):
        g, ids = from_edges([("a", "b", 1, 7), ("a", "b", 2, 3)])
        dist, pred = dijkstra(g, ids["a"], weight=g.delay)
        assert dist[ids["b"]] == 3

    def test_negative_weight_rejected(self):
        g, ids = from_edges([("a", "b", -1, 0)])
        with pytest.raises(GraphError):
            dijkstra(g, ids["a"])

    def test_early_exit_target_settled(self):
        g, ids = from_edges(
            [("a", "b", 1, 0), ("b", "c", 1, 0), ("a", "c", 5, 0), ("c", "d", 1, 0)]
        )
        dist, _ = dijkstra(g, ids["a"], target=ids["b"])
        assert dist[ids["b"]] == 1

    def test_counters_flushed_on_mid_search_failure(self):
        # Regression: the work counters used to flush only on the success
        # path, so a GraphError raised mid-search (negative weight hit
        # after some pops/relaxations) lost the record of the work done —
        # exactly the trials where triage needs it most.
        from repro import obs

        g, ids = from_edges([("a", "b", 1, 0), ("b", "c", -5, 0)])
        with obs.session() as tel:
            with pytest.raises(GraphError):
                dijkstra(g, ids["a"])
        assert tel.counters.get("dijkstra.pops", 0) >= 2
        assert tel.counters.get("dijkstra.relaxations", 0) >= 1

    def test_weight_length_mismatch(self):
        g, ids = from_edges([("a", "b", 1, 0)])
        with pytest.raises(GraphError):
            dijkstra(g, 0, weight=np.zeros(5, dtype=np.int64))


class TestPotentials:
    def test_valid_potentials_give_true_distances(self):
        g = uniform_weights(gnp_digraph(20, 0.3, rng=4), rng=5)
        base, _ = dijkstra(g, 0)
        # Use the distances themselves as potentials: reduced costs of tree
        # edges become 0, everything stays nonnegative (triangle inequality).
        reachable = base < INF
        pi = np.where(reachable, base, INF).astype(np.int64)
        # Restrict to the reachable subgraph to keep reduced costs defined.
        keep = np.nonzero(reachable[g.tail] & reachable[g.head])[0]
        sub = g.subgraph_edges(keep)
        dist, _ = dijkstra(sub, 0, potential=pi)
        assert np.array_equal(dist[reachable], base[reachable])

    def test_invalid_potentials_detected(self):
        g, ids = from_edges([("a", "b", 1, 0)])
        pi = np.array([0, 100], dtype=np.int64)  # reduced cost 1 + 0 - 100 < 0
        with pytest.raises(GraphError, match="potentials"):
            dijkstra(g, ids["a"], potential=pi)

    def test_potentials_enable_negative_raw_weights(self):
        # b->c has raw weight -2 but pi = exact distances fixes it.
        g, ids = from_edges([("a", "b", 3, 0), ("b", "c", -2, 0), ("a", "c", 2, 0)])
        pi = np.array([0, 3, 1], dtype=np.int64)  # true distances
        dist, pred = dijkstra(g, ids["a"], potential=pi)
        assert dist[ids["c"]] == 1
        assert extract_path(pred, g, ids["c"]) == [0, 1]


@settings(deadline=None, max_examples=40)
@given(st.integers(0, 10_000))
def test_matches_networkx_random(seed):
    g = uniform_weights(gnp_digraph(14, 0.25, rng=seed), rng=seed + 1)
    dist, pred = dijkstra(g, 0)
    nxg = to_networkx(g)
    nx_dist = nx.single_source_dijkstra_path_length(nxg, 0, weight="cost")
    for v in range(g.n):
        if v in nx_dist:
            assert int(dist[v]) == nx_dist[v]
            # Extracted path must be a real path achieving the distance.
            path = extract_path(pred, g, v, source=0, dist=dist)
            assert g.cost_of(path) == nx_dist[v]
        else:
            assert dist[v] == INF
