"""Tests for residual graphs (Definition 6), oplus, and Propositions 7/8."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    apply_residual_cycles,
    build_residual,
    decompose_into_cycles,
    residual_weight_of,
    split_closed_walk,
)
from repro.errors import GraphError
from repro.flow import decompose_flow, max_disjoint_paths, suurballe_k_paths
from repro.graph import from_edges, gnp_digraph, uniform_weights
from repro.graph.validate import check_disjoint_paths, is_cycle


@pytest.fixture
def square():
    g, ids = from_edges(
        [
            ("s", "a", 1, 2),  # 0
            ("a", "t", 3, 4),  # 1
            ("s", "b", 5, 6),  # 2
            ("b", "t", 7, 8),  # 3
            ("a", "b", 9, 10),  # 4
        ]
    )
    return g, ids


class TestBuildResidual:
    def test_reverses_solution_edges(self, square):
        g, ids = square
        res = build_residual(g, [0, 1])
        # Edge 0 (s->a) becomes a->s with negated weights.
        assert int(res.graph.tail[0]) == ids["a"]
        assert int(res.graph.head[0]) == ids["s"]
        assert int(res.graph.cost[0]) == -1 and int(res.graph.delay[0]) == -2
        # Non-solution edges untouched.
        assert int(res.graph.tail[2]) == ids["s"]
        assert int(res.graph.cost[2]) == 5
        assert res.reversed_mask.tolist() == [True, True, False, False, False]

    def test_empty_solution_identity(self, square):
        g, _ = square
        res = build_residual(g, [])
        assert res.graph == g

    def test_rejects_bad_ids(self, square):
        g, _ = square
        with pytest.raises(GraphError):
            build_residual(g, [99])
        with pytest.raises(GraphError):
            build_residual(g, [0, 0])

    def test_weight_of(self, square):
        g, _ = square
        res = build_residual(g, [0])
        c, d = residual_weight_of(res, [0, 2])
        assert c == -1 + 5 and d == -2 + 6


class TestApplyCycles:
    def test_reroute_swaps_paths(self, square):
        g, ids = square
        # Solution {s-a-t}; cycle uses a->b (fwd), b->t (fwd), rev(a->t).
        res = build_residual(g, [0, 1])
        cycle = [4, 3, 1]  # a->b, b->t, t->a(reversed edge 1)
        assert is_cycle(res.graph, [4, 3, 1]) or is_cycle(res.graph, [1, 4, 3])
        new = apply_residual_cycles([0, 1], res, [[4, 3, 1]])
        assert new == [0, 3, 4]  # s->a->b->t

    def test_rejects_nondisjoint_cycles(self, square):
        g, _ = square
        res = build_residual(g, [0, 1])
        with pytest.raises(GraphError):
            apply_residual_cycles([0, 1], res, [[4, 3, 1], [4, 3, 1]])

    def test_rejects_inconsistent_membership(self, square):
        g, _ = square
        res = build_residual(g, [0, 1])
        # Edge 2 forward but pretend it's already in solution.
        with pytest.raises(GraphError):
            apply_residual_cycles([0, 1, 2], res, [[2]])


class TestProposition8:
    """{P*} ⊕ {reversed P} decomposes into cycles exactly."""

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 100_000))
    def test_symmetric_difference_is_cycles(self, seed):
        g = uniform_weights(gnp_digraph(9, 0.4, rng=seed), rng=seed + 1)
        s, t = 0, g.n - 1
        used = max_disjoint_paths(g, s, t, limit=2)
        if int(used.sum()) == 0:
            return
        paths_a, _ = decompose_flow(g, np.nonzero(used)[0], s, t)
        k = len(paths_a)
        paths_b = suurballe_k_paths(g, s, t, k)
        if paths_b is None:
            return
        set_a = set(e for p in paths_a for e in p)
        set_b = set(e for p in paths_b for e in p)
        res = build_residual(g, sorted(set_a))
        # Residual edge set representing B ⊕ reversed(A):
        diff = sorted((set_b - set_a) | (set_a - set_b))
        cycles = decompose_into_cycles(res.graph, diff)
        # Every decomposed element is a genuine residual cycle and the
        # union applies back to exactly solution B.
        for c in cycles:
            assert is_cycle(res.graph, c)
        new = apply_residual_cycles(sorted(set_a), res, cycles)
        assert set(new) == set_b


class TestProposition7:
    """Applying residual cycles to a k-flow yields a k-flow."""

    @settings(deadline=None, max_examples=30)
    @given(st.integers(0, 100_000))
    def test_oplus_preserves_flow(self, seed):
        from repro.paths.bellman_ford import find_negative_cycle

        g = uniform_weights(gnp_digraph(9, 0.45, rng=seed), rng=seed + 1)
        s, t = 0, g.n - 1
        paths = suurballe_k_paths(g, s, t, 2, weight=g.delay)
        if paths is None:
            return
        sol = sorted(e for p in paths for e in p)
        res = build_residual(g, sol)
        cyc = find_negative_cycle(res.graph, weight=res.graph.cost)
        if cyc is None:
            return
        new = apply_residual_cycles(sol, res, [cyc])
        new_paths, cycles = decompose_flow(g, new, s, t)
        assert len(new_paths) == 2
        check_disjoint_paths(g, new_paths, s, t, k=2)
        # Totals moved exactly by the cycle's residual weights.
        c_delta, d_delta = residual_weight_of(res, cyc)
        assert g.cost_of(new) == g.cost_of(sol) + c_delta
        assert g.delay_of(new) == g.delay_of(sol) + d_delta


class TestSplitClosedWalk:
    def test_simple_cycle_passthrough(self, square):
        g, ids = square
        res = build_residual(g, [0, 1])
        out = split_closed_walk(res.graph, [4, 3, 1])
        assert len(out) == 1 and sorted(out[0]) == [1, 3, 4]

    def test_figure_eight_splits(self):
        g, ids = from_edges(
            [
                ("a", "b", 1, 1),  # 0
                ("b", "a", 1, 1),  # 1
                ("a", "c", 1, 1),  # 2
                ("c", "a", 1, 1),  # 3
            ]
        )
        out = split_closed_walk(g, [0, 1, 2, 3])
        assert len(out) == 2
        assert sorted(sorted(c) for c in out) == [[0, 1], [2, 3]]

    def test_rejects_open_walk(self, square):
        g, _ = square
        with pytest.raises(GraphError):
            split_closed_walk(g, [0, 4])

    def test_rejects_discontiguous(self, square):
        g, _ = square
        with pytest.raises(GraphError):
            split_closed_walk(g, [0, 3])

    def test_empty(self, square):
        g, _ = square
        assert split_closed_walk(g, []) == []

    def test_preserves_edge_multiset(self):
        g, ids = from_edges(
            [
                ("a", "b", 1, 1),
                ("b", "c", 1, 1),
                ("c", "a", 1, 1),
                ("b", "d", 1, 1),
                ("d", "b", 1, 1),
            ]
        )
        walk = [0, 3, 4, 1, 2]  # a->b->d->b->c->a
        out = split_closed_walk(g, walk)
        flat = sorted(e for c in out for e in c)
        assert flat == sorted(walk)
        assert len(out) == 2
